// Equivalence suite for the size-dispatched FIR least-squares builders.
//
// The contract under test (dsp/linalg_kernels.h):
//  - vectorized build == scalar seed build, bit for bit, at every size;
//  - correlation-form build == scalar seed build to tolerance (its Toeplitz
//    recurrence reassociates each entry's sum, trading one rounding sequence
//    for another — the only kernel in this family that changes accumulation
//    order, which is why the dispatch thresholds keep the in-simulation
//    5-8-tap fits off it);
//  - the workspace build/factor/solve split, RHS-only rebuilds, and the
//    derived conj-branch Gram reproduce the one-shot fits they replace.
#include "dsp/linalg_kernels.h"

#include <gtest/gtest.h>
#include <cmath>
#include <limits>

#include "dsp/linalg.h"
#include "dsp/rng.h"

namespace backfi::dsp {
namespace {

cvec random_vec(rng& gen, std::size_t n) {
  cvec v(n);
  for (auto& s : v) s = gen.complex_gaussian();
  return v;
}

// The seed Gram/RHS accumulation, kept in the test as an independent spelling
// of the reference (default compile flags, std::complex arithmetic).
void reference_normal_equations(const cvec& x, const cvec& y,
                                std::size_t n_taps, cvec& gram, cvec& rhs) {
  const std::size_t n = x.size();
  gram.assign(n_taps * n_taps, cplx{0.0, 0.0});
  rhs.assign(n_taps, cplx{0.0, 0.0});
  for (std::size_t i = 0; i < n_taps; ++i) {
    for (std::size_t j = i; j < n_taps; ++j) {
      cplx acc{0.0, 0.0};
      for (std::size_t t = n_taps - 1; t < n; ++t)
        acc += std::conj(x[t - i]) * x[t - j];
      gram[j * n_taps + i] = acc;
      gram[i * n_taps + j] = std::conj(acc);
    }
  }
  for (std::size_t i = 0; i < n_taps; ++i) {
    cplx acc{0.0, 0.0};
    for (std::size_t t = n_taps - 1; t < n; ++t)
      acc += std::conj(x[t - i]) * y[t];
    rhs[i] = acc;
  }
}

TEST(LinalgKernelsTest, VectorizedBuildMatchesScalarBitExactly) {
  rng gen(901);
  // Odd window lengths on purpose: they exercise the scalar tails of the
  // two-entry lane pairing at every alignment.
  for (const std::size_t n : {std::size_t{33}, std::size_t{97}, std::size_t{313},
                              std::size_t{601}}) {
    for (std::size_t n_taps = 1; n_taps <= 16; ++n_taps) {
      if (n < n_taps) continue;
      const cvec x = random_vec(gen, n);
      const cvec y = random_vec(gen, n);
      cvec ref_gram, ref_rhs;
      reference_normal_equations(x, y, n_taps, ref_gram, ref_rhs);

      cvec gram(n_taps * n_taps), rhs(n_taps);
      detail::fir_normal_equations_vectorized(x.data(), n, y.data(), n_taps,
                                              gram.data(), rhs.data());
      for (std::size_t k = 0; k < gram.size(); ++k)
        ASSERT_EQ(gram[k], ref_gram[k])
            << "gram n=" << n << " taps=" << n_taps << " k=" << k;
      for (std::size_t k = 0; k < rhs.size(); ++k)
        ASSERT_EQ(rhs[k], ref_rhs[k])
            << "rhs n=" << n << " taps=" << n_taps << " k=" << k;
    }
  }
}

TEST(LinalgKernelsTest, CorrelationBuildMatchesScalarToTolerance) {
  rng gen(902);
  for (const std::size_t n : {std::size_t{201}, std::size_t{513}}) {
    for (std::size_t n_taps = 1; n_taps <= 16; ++n_taps) {
      const cvec x = random_vec(gen, n);
      const cvec y = random_vec(gen, n);
      cvec ref_gram, ref_rhs;
      reference_normal_equations(x, y, n_taps, ref_gram, ref_rhs);

      cvec gram(n_taps * n_taps), rhs(n_taps);
      detail::fir_normal_equations_correlation(x.data(), n, y.data(), n_taps,
                                               gram.data(), rhs.data());
      const double scale = std::abs(ref_gram[0]);
      for (std::size_t k = 0; k < gram.size(); ++k)
        ASSERT_NEAR(std::abs(gram[k] - ref_gram[k]), 0.0, 1e-9 * scale)
            << "gram n=" << n << " taps=" << n_taps << " k=" << k;
      // The RHS build is shared with the vectorized path: bit-identical.
      for (std::size_t k = 0; k < rhs.size(); ++k)
        ASSERT_EQ(rhs[k], ref_rhs[k]) << "rhs taps=" << n_taps << " k=" << k;
    }
  }
}

TEST(LinalgKernelsTest, ForcedPathsAgreeOnTaps) {
  rng gen(903);
  // Full-fit comparison across every builder, including edge-dominated tiny
  // windows (m barely above n_taps) and ridge 0 vs 1e-6.
  for (const std::size_t n : {std::size_t{19}, std::size_t{41}, std::size_t{257},
                              std::size_t{511}}) {
    for (const std::size_t n_taps :
         {std::size_t{1}, std::size_t{2}, std::size_t{5}, std::size_t{8},
          std::size_t{13}, std::size_t{16}}) {
      if (n < n_taps + 4) continue;
      for (const double ridge : {0.0, 1e-6}) {
        // An edge-dominated window with fewer usable rows than taps is
        // rank-deficient; it is only solvable with the ridge on.
        if (ridge == 0.0 && n - (n_taps - 1) < n_taps) continue;
        const cvec x = random_vec(gen, n);
        const cvec y = random_vec(gen, n);

        cvec taps_scalar, taps_vec, taps_corr;
        fir_ls_workspace w;
        detail::estimate_fir_least_squares_with_path(
            x, y, n_taps, ridge, fir_ls_path::scalar, taps_scalar, w);
        detail::estimate_fir_least_squares_with_path(
            x, y, n_taps, ridge, fir_ls_path::vectorized, taps_vec, w);
        detail::estimate_fir_least_squares_with_path(
            x, y, n_taps, ridge, fir_ls_path::correlation, taps_corr, w);

        for (std::size_t k = 0; k < n_taps; ++k) {
          ASSERT_EQ(taps_vec[k], taps_scalar[k])
              << "vectorized n=" << n << " taps=" << n_taps << " k=" << k;
          ASSERT_NEAR(std::abs(taps_corr[k] - taps_scalar[k]), 0.0, 1e-7)
              << "correlation n=" << n << " taps=" << n_taps << " k=" << k;
        }
      }
    }
  }
}

TEST(LinalgKernelsTest, DispatchedFitMatchesSeedImplementationBitExactly) {
  rng gen(904);
  // Whatever path the size dispatch picks must reproduce the allocating
  // seed API bitwise for in-simulation shapes (the pinned-literal contract).
  for (const auto& [n, n_taps] :
       {std::pair<std::size_t, std::size_t>{320, 5},
        {320, 6}, {320, 8}, {600, 5}, {20, 3}, {16, 8}}) {
    const cvec x = random_vec(gen, n);
    const cvec y = random_vec(gen, n);
    const cvec seed = estimate_fir_least_squares(x, y, n_taps, 1e-9);

    cvec taps;
    fir_ls_workspace w;
    estimate_fir_least_squares_into(x, y, n_taps, 1e-9, taps, w);
    ASSERT_EQ(taps.size(), seed.size());
    for (std::size_t k = 0; k < n_taps; ++k)
      ASSERT_EQ(taps[k], seed[k]) << "n=" << n << " taps=" << n_taps;
  }
}

TEST(LinalgKernelsTest, RhsRebuildReusingFactorMatchesFreshFit) {
  rng gen(905);
  const cvec x = random_vec(gen, 320);
  const cvec y1 = random_vec(gen, 320);
  const cvec y2 = random_vec(gen, 320);

  cvec ref1, ref2, taps;
  fir_ls_workspace w;
  estimate_fir_least_squares_into(x, y1, 6, 1e-9, ref1, w);
  fir_ls_workspace w2;
  estimate_fir_least_squares_into(x, y2, 6, 1e-9, ref2, w2);

  // Refit round: same excitation, new target — rebuild only the RHS and
  // reuse the Cholesky factor. Same Gram bits give the same factor bits, so
  // both solves must match their fresh-fit counterparts exactly.
  fir_ls_build_rhs(x, y2, w);
  fir_ls_solve(w, taps);
  ASSERT_EQ(taps.size(), ref2.size());
  for (std::size_t k = 0; k < taps.size(); ++k) ASSERT_EQ(taps[k], ref2[k]);

  fir_ls_build_rhs(x, y1, w);
  fir_ls_solve(w, taps);
  for (std::size_t k = 0; k < taps.size(); ++k) ASSERT_EQ(taps[k], ref1[k]);
}

TEST(LinalgKernelsTest, DerivedConjGramMatchesDirectConjBuild) {
  rng gen(906);
  const std::size_t n = 320, n_taps = 6;
  for (const std::size_t edge : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                                 std::size_t{32}}) {
    const cvec x = random_vec(gen, n);
    const cvec y = random_vec(gen, n);
    cvec xc(x.size()), yc(y.size() - edge);
    for (std::size_t i = 0; i < x.size(); ++i) xc[i] = std::conj(x[i]);
    for (std::size_t i = 0; i < yc.size(); ++i) yc[i] = y[edge + i];

    // Direct: fit taps of the conjugated, head-trimmed problem from raw
    // samples (what digital_canceller::adapt used to do per packet).
    const cvec direct = estimate_fir_least_squares(
        std::span<const cplx>(xc).subspan(edge), yc, n_taps, 1e-9);

    fir_ls_workspace lin, conj_w;
    fir_ls_build(x, y, n_taps, lin);
    fir_ls_derive_conj(x, edge, lin, conj_w);
    fir_ls_build_rhs(std::span<const cplx>(xc).subspan(edge), yc, conj_w);
    fir_ls_factor(conj_w, 1e-9);
    cvec taps;
    fir_ls_solve(conj_w, taps);

    ASSERT_EQ(taps.size(), direct.size());
    for (std::size_t k = 0; k < n_taps; ++k)
      ASSERT_NEAR(std::abs(taps[k] - direct[k]), 0.0,
                  1e-9 * (1.0 + std::abs(direct[k])))
          << "edge=" << edge << " k=" << k;
  }
}

TEST(LinalgKernelsTest, WorkspaceFactorRejectsNonPositiveDefinite) {
  // A rank-deficient excitation (all zeros) with zero ridge cannot be
  // factored; the workspace split must surface the same error the seed
  // solve path threw.
  const cvec x(64, cplx{0.0, 0.0});
  const cvec y(64, cplx{1.0, 0.0});
  fir_ls_workspace w;
  fir_ls_build(x, y, 4, w);
  EXPECT_THROW(fir_ls_factor(w, 0.0), std::runtime_error);
}

TEST(LinalgKernelsTest, DispatchCountersTrackPathSelection) {
  reset_fir_ls_dispatch_counts();
  rng gen(907);
  const cvec big_x = random_vec(gen, 400), big_y = random_vec(gen, 400);
  const cvec small_x = random_vec(gen, 20), small_y = random_vec(gen, 20);

  estimate_fir_least_squares(small_x, small_y, 4, 1e-9);   // m=17 -> scalar
  estimate_fir_least_squares(big_x, big_y, 6, 1e-9);       // -> vectorized
  estimate_fir_least_squares(big_x, big_y, 14, 1e-9);      // -> correlation

  const fir_ls_counts c = fir_ls_dispatch_counts();
  EXPECT_EQ(c.scalar, 1u);
  EXPECT_EQ(c.vectorized, 1u);
  EXPECT_EQ(c.correlation, 1u);
}

TEST(LinalgKernelsTest, AllFiniteWindowMatchesScalarPredicate) {
  rng gen(908);
  cvec x = random_vec(gen, 131), y = random_vec(gen, 131);
  EXPECT_TRUE(detail::all_finite_window2(x.data(), y.data(), 0, x.size()));
  EXPECT_TRUE(detail::all_finite_window2(x.data(), y.data(), 40, 40));

  for (const double bad : {std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity()}) {
    for (const std::size_t pos : {std::size_t{0}, std::size_t{63},
                                  std::size_t{130}}) {
      cvec xb = x, yb = y;
      xb[pos] = cplx(bad, 0.0);
      EXPECT_FALSE(detail::all_finite_window2(xb.data(), y.data(), 0, x.size()))
          << "x pos=" << pos;
      yb[pos] = cplx(0.0, bad);
      EXPECT_FALSE(detail::all_finite_window2(x.data(), yb.data(), 0, y.size()))
          << "y pos=" << pos;
      // Outside the window the poison must be invisible.
      if (pos > 0 && pos < x.size() - 1) {
        EXPECT_TRUE(
            detail::all_finite_window2(xb.data(), yb.data(), pos + 1, x.size()));
        EXPECT_TRUE(detail::all_finite_window2(xb.data(), yb.data(), 0, pos));
      }
    }
  }
}

}  // namespace
}  // namespace backfi::dsp
