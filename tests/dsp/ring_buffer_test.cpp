#include "dsp/ring_buffer.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace backfi::dsp {
namespace {

TEST(RingBuffer, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(ring_capacity_for(0), 2u);
  EXPECT_EQ(ring_capacity_for(1), 2u);
  EXPECT_EQ(ring_capacity_for(2), 2u);
  EXPECT_EQ(ring_capacity_for(3), 4u);
  EXPECT_EQ(ring_capacity_for(8), 8u);
  EXPECT_EQ(ring_capacity_for(9), 16u);
  EXPECT_EQ(spsc_ring<int>(5).capacity(), 8u);
}

TEST(RingBuffer, PushPopPreservesFifoOrderAcrossWraparound) {
  spsc_ring<std::size_t> ring(4);  // capacity 4; cursors wrap many times
  std::size_t next_in = 0;
  std::size_t next_out = 0;
  // Interleave pushes and pops so the cursors cross the capacity boundary
  // repeatedly with the ring near-full the whole time.
  for (int round = 0; round < 1000; ++round) {
    while (ring.try_push(std::size_t(next_in))) ++next_in;
    std::size_t got = 0;
    ASSERT_TRUE(ring.try_pop(got));
    ASSERT_EQ(got, next_out);
    ++next_out;
  }
  // Drain: everything pushed comes out exactly once, in order.
  std::size_t got = 0;
  while (ring.try_pop(got)) {
    ASSERT_EQ(got, next_out);
    ++next_out;
  }
  EXPECT_EQ(next_out, next_in);
  EXPECT_TRUE(ring.empty());
}

TEST(RingBuffer, FullRingRefusesPushAndLeavesValueUntouched) {
  spsc_ring<std::string> ring(2);
  ASSERT_TRUE(ring.try_push(std::string("a")));
  ASSERT_TRUE(ring.try_push(std::string("b")));
  EXPECT_TRUE(ring.full());

  std::string rejected = "keep-me";
  EXPECT_FALSE(ring.try_push(std::move(rejected)));
  EXPECT_EQ(rejected, "keep-me");  // backpressure: value not consumed

  std::string out;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, "a");
  EXPECT_TRUE(ring.try_push(std::string("c")));  // slot freed by the pop
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, "b");
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, "c");
  EXPECT_FALSE(ring.try_pop(out));  // empty
}

TEST(RingBuffer, HighWaterTracksMaxDepthSeenAtPushTime) {
  spsc_ring<int> ring(8);
  EXPECT_EQ(ring.high_water(), 0u);
  ring.try_push(1);
  ring.try_push(2);
  EXPECT_EQ(ring.high_water(), 2u);
  int out = 0;
  ring.try_pop(out);
  ring.try_pop(out);
  EXPECT_EQ(ring.high_water(), 2u);  // monotone: drains don't lower it
  for (int i = 0; i < 5; ++i) ring.try_push(i);
  EXPECT_EQ(ring.high_water(), 5u);
}

// Two-thread producer/consumer handoff (TSan-covered in CI): every value
// crosses the ring exactly once, in order, through a capacity far smaller
// than the item count so the cursors wrap thousands of times.
TEST(RingBufferThreaded, TwoThreadHandoffDeliversAllInOrder) {
  constexpr std::size_t kItems = 200000;
  spsc_ring<std::size_t> ring(8);

  std::vector<std::size_t> received;
  received.reserve(kItems);
  std::thread consumer([&] {
    std::size_t got = 0;
    while (received.size() < kItems) {
      if (ring.try_pop(got))
        received.push_back(got);
      else
        std::this_thread::yield();
    }
  });

  for (std::size_t i = 0; i < kItems; ++i) {
    while (!ring.try_push(std::size_t(i))) std::this_thread::yield();
  }
  consumer.join();

  ASSERT_EQ(received.size(), kItems);
  for (std::size_t i = 0; i < kItems; ++i) ASSERT_EQ(received[i], i);
  EXPECT_TRUE(ring.empty());
  EXPECT_LE(ring.high_water(), ring.capacity());
  EXPECT_GE(ring.high_water(), 1u);
}

// Move-only payloads cross the boundary intact (the stream session moves
// decoded segments with owned buffers through its rings).
TEST(RingBufferThreaded, MoveOnlyPayloadOwnershipTransfers) {
  struct payload {
    std::unique_ptr<std::size_t> value;
  };
  constexpr std::size_t kItems = 20000;
  spsc_ring<payload> ring(4);

  std::size_t sum = 0;
  std::thread consumer([&] {
    std::size_t seen = 0;
    payload p;
    while (seen < kItems) {
      if (ring.try_pop(p)) {
        ASSERT_NE(p.value, nullptr);
        sum += *p.value;
        ++seen;
      } else {
        std::this_thread::yield();
      }
    }
  });

  for (std::size_t i = 0; i < kItems; ++i) {
    payload p{std::make_unique<std::size_t>(i)};
    while (!ring.try_push(std::move(p))) std::this_thread::yield();
    EXPECT_EQ(p.value, nullptr);  // moved in on the successful push
  }
  consumer.join();
  EXPECT_EQ(sum, kItems * (kItems - 1) / 2);
}

}  // namespace
}  // namespace backfi::dsp
