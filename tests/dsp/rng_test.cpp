#include "dsp/rng.h"

#include <gtest/gtest.h>

#include <cmath>

namespace backfi::dsp {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  rng gen(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = gen.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  rng gen(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = gen.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntCoversRangeWithoutBias) {
  rng gen(11);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[gen.uniform_int(10)];
  for (int c : counts) {
    EXPECT_GT(c, n / 10 - n / 50);
    EXPECT_LT(c, n / 10 + n / 50);
  }
}

TEST(RngTest, GaussianMomentsMatchStandardNormal) {
  rng gen(13);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = gen.gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(RngTest, ComplexGaussianUnitPowerAndCircular) {
  rng gen(17);
  const int n = 100000;
  double power = 0.0;
  cplx mean{0.0, 0.0};
  cplx pseudo{0.0, 0.0};  // E[z^2] should vanish for circular symmetry
  for (int i = 0; i < n; ++i) {
    const cplx z = gen.complex_gaussian();
    power += std::norm(z);
    mean += z;
    pseudo += z * z;
  }
  EXPECT_NEAR(power / n, 1.0, 0.02);
  EXPECT_NEAR(std::abs(mean) / n, 0.0, 0.01);
  EXPECT_NEAR(std::abs(pseudo) / n, 0.0, 0.02);
}

TEST(RngTest, BernoulliMatchesProbability) {
  rng gen(19);
  const int n = 100000;
  int ones = 0;
  for (int i = 0; i < n; ++i) ones += gen.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.3, 0.01);
}

TEST(RngTest, ExponentialMeanMatches) {
  rng gen(23);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += gen.exponential(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(RngTest, ForkProducesIndependentStream) {
  rng parent(29);
  rng child = parent.fork();
  // Child stream should not replicate the parent stream.
  rng parent_copy(29);
  (void)parent_copy.next_u64();  // same position as parent after fork
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (child.next_u64() == parent_copy.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(RngTest, RandomBitsAreZeroOrOne) {
  rng gen(31);
  const auto bits = gen.random_bits(1000);
  ASSERT_EQ(bits.size(), 1000u);
  int ones = 0;
  for (auto b : bits) {
    ASSERT_LE(b, 1);
    ones += b;
  }
  EXPECT_GT(ones, 400);
  EXPECT_LT(ones, 600);
}

}  // namespace
}  // namespace backfi::dsp
