#include "dsp/vec_ops.h"

#include <gtest/gtest.h>

#include "dsp/rng.h"

namespace backfi::dsp {
namespace {

TEST(VecOpsTest, EnergyOfKnownVector) {
  const cvec x = {{3.0, 4.0}, {0.0, 0.0}, {1.0, 0.0}};
  EXPECT_DOUBLE_EQ(energy(x), 25.0 + 0.0 + 1.0);
}

TEST(VecOpsTest, MeanPowerEmptyIsZero) {
  const cvec x;
  EXPECT_DOUBLE_EQ(mean_power(x), 0.0);
}

TEST(VecOpsTest, RmsOfConstant) {
  const cvec x(16, cplx{0.0, 2.0});
  EXPECT_DOUBLE_EQ(rms(x), 2.0);
}

TEST(VecOpsTest, DotConjOrthogonalVectors) {
  const cvec a = {{1.0, 0.0}, {0.0, 1.0}};
  const cvec b = {{0.0, 1.0}, {1.0, 0.0}};
  // <a, b> = 1*conj(j) + j*conj(1) = -j + j = 0
  EXPECT_NEAR(std::abs(dot_conj(a, b)), 0.0, 1e-15);
}

TEST(VecOpsTest, DotConjSelfIsEnergy) {
  rng gen(5);
  cvec x(64);
  for (auto& v : x) v = gen.complex_gaussian();
  const cplx d = dot_conj(x, x);
  EXPECT_NEAR(d.real(), energy(x), 1e-9);
  EXPECT_NEAR(d.imag(), 0.0, 1e-9);
}

TEST(VecOpsTest, AddSubtractRoundTrip) {
  rng gen(6);
  cvec x(32), y(32);
  for (auto& v : x) v = gen.complex_gaussian();
  for (auto& v : y) v = gen.complex_gaussian();
  cvec z = y;
  add_in_place(z, x);
  subtract_in_place(z, x);
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(std::abs(z[i] - y[i]), 0.0, 1e-12);
}

TEST(VecOpsTest, ScaleInPlace) {
  cvec x = {{1.0, 1.0}, {2.0, 0.0}};
  scale_in_place(x, cplx{0.0, 1.0});
  EXPECT_NEAR(std::abs(x[0] - cplx(-1.0, 1.0)), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(x[1] - cplx(0.0, 2.0)), 0.0, 1e-15);
}

TEST(VecOpsTest, NormalizedToPowerSetsMeanPower) {
  rng gen(7);
  cvec x(128);
  for (auto& v : x) v = 3.7 * gen.complex_gaussian();
  const cvec y = normalized_to_power(x, 0.25);
  EXPECT_NEAR(mean_power(y), 0.25, 1e-12);
}

TEST(VecOpsTest, NormalizedToPowerOnSilenceIsNoOp) {
  const cvec x(8, cplx{0.0, 0.0});
  const cvec y = normalized_to_power(x, 1.0);
  EXPECT_DOUBLE_EQ(mean_power(y), 0.0);
}

TEST(VecOpsTest, HadamardMultipliesElementwise) {
  const cvec x = {{1.0, 0.0}, {0.0, 2.0}};
  const cvec y = {{0.0, 1.0}, {0.0, 1.0}};
  const cvec z = hadamard(x, y);
  EXPECT_NEAR(std::abs(z[0] - cplx(0.0, 1.0)), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(z[1] - cplx(-2.0, 0.0)), 0.0, 1e-15);
}

TEST(VecOpsTest, PeakAndArgmaxMagnitude) {
  const cvec x = {{1.0, 0.0}, {0.0, -5.0}, {3.0, 0.0}};
  EXPECT_DOUBLE_EQ(peak_magnitude(x), 5.0);
  EXPECT_EQ(argmax_magnitude(x), 1u);
}

}  // namespace
}  // namespace backfi::dsp
