#include "dsp/fir.h"

#include <gtest/gtest.h>

#include "dsp/rng.h"

namespace backfi::dsp {
namespace {

TEST(FirTest, ConvolveWithDeltaIsIdentity) {
  const cvec x = {{1.0, 2.0}, {3.0, -1.0}, {0.5, 0.5}};
  const cvec delta = {cplx{1.0, 0.0}};
  const cvec y = convolve(x, delta);
  ASSERT_EQ(y.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(std::abs(y[i] - x[i]), 0.0, 1e-15);
}

TEST(FirTest, ConvolveWithShiftedDeltaDelays) {
  const cvec x = {{1.0, 0.0}, {2.0, 0.0}};
  const cvec h = {{0.0, 0.0}, {0.0, 0.0}, {1.0, 0.0}};
  const cvec y = convolve(x, h);
  ASSERT_EQ(y.size(), 4u);
  EXPECT_NEAR(std::abs(y[0]), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(y[1]), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(y[2] - cplx(1.0, 0.0)), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(y[3] - cplx(2.0, 0.0)), 0.0, 1e-15);
}

TEST(FirTest, ConvolutionIsCommutative) {
  rng gen(8);
  cvec x(20), h(5);
  for (auto& v : x) v = gen.complex_gaussian();
  for (auto& v : h) v = gen.complex_gaussian();
  const cvec xy = convolve(x, h);
  const cvec yx = convolve(h, x);
  ASSERT_EQ(xy.size(), yx.size());
  for (std::size_t i = 0; i < xy.size(); ++i)
    EXPECT_NEAR(std::abs(xy[i] - yx[i]), 0.0, 1e-12);
}

TEST(FirTest, ConvolveEmptyReturnsEmpty) {
  const cvec x;
  const cvec h = {cplx{1.0, 0.0}};
  EXPECT_TRUE(convolve(x, h).empty());
  EXPECT_TRUE(convolve(h, x).empty());
}

TEST(FirTest, ConvolveSameTruncatesToInputLength) {
  rng gen(9);
  cvec x(50), h(7);
  for (auto& v : x) v = gen.complex_gaussian();
  for (auto& v : h) v = gen.complex_gaussian();
  const cvec same = convolve_same(x, h);
  const cvec full = convolve(x, h);
  ASSERT_EQ(same.size(), x.size());
  for (std::size_t i = 0; i < same.size(); ++i)
    EXPECT_NEAR(std::abs(same[i] - full[i]), 0.0, 1e-15);
}

TEST(FirTest, StreamingMatchesBatchAcrossBlockBoundaries) {
  rng gen(10);
  cvec x(100), taps(9);
  for (auto& v : x) v = gen.complex_gaussian();
  for (auto& v : taps) v = gen.complex_gaussian();

  const cvec batch = convolve_same(x, taps);

  fir_filter filt(taps);
  cvec streamed;
  // Deliberately irregular block sizes to stress the history handling.
  const std::size_t blocks[] = {1, 3, 13, 40, 43};
  std::size_t pos = 0;
  for (std::size_t len : blocks) {
    const cvec out = filt.process(std::span(x).subspan(pos, len));
    streamed.insert(streamed.end(), out.begin(), out.end());
    pos += len;
  }
  ASSERT_EQ(streamed.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i)
    EXPECT_NEAR(std::abs(streamed[i] - batch[i]), 0.0, 1e-12) << "at index " << i;
}

TEST(FirTest, OverlapSaveMatchesDirectRandomized) {
  rng seeds(77);
  // Mixed sizes around the dispatch threshold, including non-power-of-two
  // kernels and a signal shorter than one FFT block.
  const struct { std::size_t nx, nh; } cases[] = {
      {1000, 97}, {1 << 12, 256}, {513, 129}, {200, 200}, {96, 4096}};
  for (const auto& c : cases) {
    rng gen(seeds.next_u64());
    cvec x(c.nx), h(c.nh);
    for (auto& v : x) v = gen.complex_gaussian();
    for (auto& v : h) v = gen.complex_gaussian();
    const cvec direct = convolve_direct(x, h);
    const cvec fast = convolve_overlap_save(x, h);
    ASSERT_EQ(fast.size(), direct.size());
    double scale = 0.0;
    for (const cplx& v : direct) scale = std::max(scale, std::abs(v));
    for (std::size_t i = 0; i < direct.size(); ++i)
      EXPECT_NEAR(std::abs(fast[i] - direct[i]) / scale, 0.0, 1e-9)
          << "nx=" << c.nx << " nh=" << c.nh << " i=" << i;
  }
}

TEST(FirTest, ConvolveDispatchesLongKernelsToOverlapSave) {
  rng gen(78);
  cvec x(2048), h(fft_convolve_min_taps);
  for (auto& v : x) v = gen.complex_gaussian();
  for (auto& v : h) v = gen.complex_gaussian();
  // At the threshold, convolve must return exactly the overlap-save result.
  const cvec dispatched = convolve(x, h);
  const cvec fast = convolve_overlap_save(x, h);
  ASSERT_EQ(dispatched.size(), fast.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_EQ(dispatched[i].real(), fast[i].real());
    EXPECT_EQ(dispatched[i].imag(), fast[i].imag());
  }
}

TEST(FirTest, ConvolveShortKernelsStayBitIdenticalToDirect) {
  rng gen(79);
  cvec x(512), h(fft_convolve_min_taps - 1);
  for (auto& v : x) v = gen.complex_gaussian();
  for (auto& v : h) v = gen.complex_gaussian();
  const cvec dispatched = convolve(x, h);
  const cvec direct = convolve_direct(x, h);
  ASSERT_EQ(dispatched.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(dispatched[i].real(), direct[i].real());
    EXPECT_EQ(dispatched[i].imag(), direct[i].imag());
  }
}

TEST(FirTest, ResetClearsHistory) {
  const cvec taps = {{1.0, 0.0}, {1.0, 0.0}};
  fir_filter filt(taps);
  const cvec block = {{1.0, 0.0}};
  (void)filt.process(block);
  filt.reset();
  const cvec out = filt.process(block);
  // Without reset the first output would be 1 + previous(1) = 2.
  EXPECT_NEAR(std::abs(out[0] - cplx(1.0, 0.0)), 0.0, 1e-15);
}

}  // namespace
}  // namespace backfi::dsp
