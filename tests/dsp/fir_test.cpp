#include "dsp/fir.h"

#include <gtest/gtest.h>
#include <cstdint>

#include "dsp/rng.h"
#include "dsp/vec_ops.h"

namespace backfi::dsp {
namespace {

TEST(FirTest, ConvolveWithDeltaIsIdentity) {
  const cvec x = {{1.0, 2.0}, {3.0, -1.0}, {0.5, 0.5}};
  const cvec delta = {cplx{1.0, 0.0}};
  const cvec y = convolve(x, delta);
  ASSERT_EQ(y.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(std::abs(y[i] - x[i]), 0.0, 1e-15);
}

TEST(FirTest, ConvolveWithShiftedDeltaDelays) {
  const cvec x = {{1.0, 0.0}, {2.0, 0.0}};
  const cvec h = {{0.0, 0.0}, {0.0, 0.0}, {1.0, 0.0}};
  const cvec y = convolve(x, h);
  ASSERT_EQ(y.size(), 4u);
  EXPECT_NEAR(std::abs(y[0]), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(y[1]), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(y[2] - cplx(1.0, 0.0)), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(y[3] - cplx(2.0, 0.0)), 0.0, 1e-15);
}

TEST(FirTest, ConvolutionIsCommutative) {
  rng gen(8);
  cvec x(20), h(5);
  for (auto& v : x) v = gen.complex_gaussian();
  for (auto& v : h) v = gen.complex_gaussian();
  const cvec xy = convolve(x, h);
  const cvec yx = convolve(h, x);
  ASSERT_EQ(xy.size(), yx.size());
  for (std::size_t i = 0; i < xy.size(); ++i)
    EXPECT_NEAR(std::abs(xy[i] - yx[i]), 0.0, 1e-12);
}

TEST(FirTest, ConvolveEmptyReturnsEmpty) {
  const cvec x;
  const cvec h = {cplx{1.0, 0.0}};
  EXPECT_TRUE(convolve(x, h).empty());
  EXPECT_TRUE(convolve(h, x).empty());
}

TEST(FirTest, ConvolveSameTruncatesToInputLength) {
  rng gen(9);
  cvec x(50), h(7);
  for (auto& v : x) v = gen.complex_gaussian();
  for (auto& v : h) v = gen.complex_gaussian();
  const cvec same = convolve_same(x, h);
  const cvec full = convolve(x, h);
  ASSERT_EQ(same.size(), x.size());
  for (std::size_t i = 0; i < same.size(); ++i)
    EXPECT_NEAR(std::abs(same[i] - full[i]), 0.0, 1e-15);
}

TEST(FirTest, StreamingMatchesBatchAcrossBlockBoundaries) {
  rng gen(10);
  cvec x(100), taps(9);
  for (auto& v : x) v = gen.complex_gaussian();
  for (auto& v : taps) v = gen.complex_gaussian();

  const cvec batch = convolve_same(x, taps);

  fir_filter filt(taps);
  cvec streamed;
  // Deliberately irregular block sizes to stress the history handling.
  const std::size_t blocks[] = {1, 3, 13, 40, 43};
  std::size_t pos = 0;
  for (std::size_t len : blocks) {
    const cvec out = filt.process(std::span(x).subspan(pos, len));
    streamed.insert(streamed.end(), out.begin(), out.end());
    pos += len;
  }
  ASSERT_EQ(streamed.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i)
    EXPECT_NEAR(std::abs(streamed[i] - batch[i]), 0.0, 1e-12) << "at index " << i;
}

TEST(FirTest, OverlapSaveMatchesDirectRandomized) {
  rng seeds(77);
  // Mixed sizes around the dispatch threshold, including non-power-of-two
  // kernels and a signal shorter than one FFT block.
  const struct { std::size_t nx, nh; } cases[] = {
      {1000, 97}, {1 << 12, 256}, {513, 129}, {200, 200}, {96, 4096}};
  for (const auto& c : cases) {
    rng gen(seeds.next_u64());
    cvec x(c.nx), h(c.nh);
    for (auto& v : x) v = gen.complex_gaussian();
    for (auto& v : h) v = gen.complex_gaussian();
    const cvec direct = convolve_direct(x, h);
    const cvec fast = convolve_overlap_save(x, h);
    ASSERT_EQ(fast.size(), direct.size());
    double scale = 0.0;
    for (const cplx& v : direct) scale = std::max(scale, std::abs(v));
    for (std::size_t i = 0; i < direct.size(); ++i)
      EXPECT_NEAR(std::abs(fast[i] - direct[i]) / scale, 0.0, 1e-9)
          << "nx=" << c.nx << " nh=" << c.nh << " i=" << i;
  }
}

TEST(FirTest, ConvolveDispatchesLongKernelsToOverlapSave) {
  rng gen(78);
  cvec x(2048), h(fft_convolve_min_taps);
  for (auto& v : x) v = gen.complex_gaussian();
  for (auto& v : h) v = gen.complex_gaussian();
  // At the threshold, convolve must return exactly the overlap-save result.
  const cvec dispatched = convolve(x, h);
  const cvec fast = convolve_overlap_save(x, h);
  ASSERT_EQ(dispatched.size(), fast.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_EQ(dispatched[i].real(), fast[i].real());
    EXPECT_EQ(dispatched[i].imag(), fast[i].imag());
  }
}

TEST(FirTest, ConvolveShortKernelsStayBitIdenticalToDirect) {
  rng gen(79);
  cvec x(512), h(fft_convolve_min_taps - 1);
  for (auto& v : x) v = gen.complex_gaussian();
  for (auto& v : h) v = gen.complex_gaussian();
  const cvec dispatched = convolve(x, h);
  const cvec direct = convolve_direct(x, h);
  ASSERT_EQ(dispatched.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(dispatched[i].real(), direct[i].real());
    EXPECT_EQ(dispatched[i].imag(), direct[i].imag());
  }
}

TEST(FirTest, ResetClearsHistory) {
  const cvec taps = {{1.0, 0.0}, {1.0, 0.0}};
  fir_filter filt(taps);
  const cvec block = {{1.0, 0.0}};
  (void)filt.process(block);
  filt.reset();
  const cvec out = filt.process(block);
  // Without reset the first output would be 1 + previous(1) = 2.
  EXPECT_NEAR(std::abs(out[0] - cplx(1.0, 0.0)), 0.0, 1e-15);
}


cvec window_vec(std::size_t n, std::uint64_t seed) {
  rng gen(seed);
  cvec v(n);
  for (auto& s : v) s = gen.complex_gaussian();
  return v;
}

TEST(FirTest, ConvolveSameRangeBitIdenticalInsideWindowZeroOutside) {
  const cvec x = window_vec(300, 101);
  const cvec h = window_vec(5, 102);
  const cvec full = convolve_same(x, h);
  const std::size_t windows[][2] = {{0, 300},   {0, 0},     {10, 11},
                                    {37, 123},  {250, 300}, {290, 1000},
                                    {300, 300}, {500, 600}};
  for (const auto& w : windows) {
    const cvec ranged = convolve_same_range(x, h, w[0], w[1]);
    ASSERT_EQ(ranged.size(), x.size());
    const std::size_t hi = w[1] < x.size() ? w[1] : x.size();
    const std::size_t lo = w[0] < hi ? w[0] : hi;
    for (std::size_t i = 0; i < ranged.size(); ++i) {
      const cplx want = (i >= lo && i < hi) ? full[i] : cplx{0.0, 0.0};
      ASSERT_EQ(ranged[i], want)
          << "window [" << w[0] << ", " << w[1] << ") sample " << i;
    }
  }
}

TEST(FirTest, ConvolveSameRangeAllZeroTapsGiveZeroWindow) {
  const cvec x = window_vec(64, 103);
  const cvec h(4, cplx{0.0, 0.0});
  const cvec ranged = convolve_same_range(x, h, 5, 20);
  for (const auto& v : ranged) ASSERT_EQ(v, cplx(0.0, 0.0));
}

TEST(FirTest, ConvolveSameRangeMatchesFftRegime) {
  const cvec x = window_vec(512, 104);
  const cvec h = window_vec(fft_convolve_min_taps + 7, 105);
  const cvec full = convolve_same(x, h);
  const cvec ranged = convolve_same_range(x, h, 100, 200);
  for (std::size_t i = 100; i < 200; ++i) ASSERT_EQ(ranged[i], full[i]) << i;
}

TEST(FirTest, ConvolveSameRangeIntoReusesWarmBuffer) {
  const cvec x = window_vec(256, 106);
  const cvec h = window_vec(6, 107);
  const cvec full = convolve_same(x, h);
  workspace_stats stats;
  cvec out;
  convolve_same_range_into(x, h, 30, 90, out, &stats);
  ASSERT_EQ(out.size(), x.size());
  for (std::size_t i = 30; i < 90; ++i) ASSERT_EQ(out[i], full[i]) << i;
  EXPECT_GT(stats.bytes_allocated, 0u);
  const std::uint64_t allocated_after_first = stats.bytes_allocated;
  for (int rep = 0; rep < 3; ++rep) {
    convolve_same_range_into(x, h, 30, 90, out, &stats);
    for (std::size_t i = 30; i < 90; ++i) ASSERT_EQ(out[i], full[i]) << i;
  }
  EXPECT_EQ(stats.bytes_allocated, allocated_after_first);
  EXPECT_GT(stats.bytes_reused, 0u);
}

TEST(FirTest, ConvolveSameIntoMatchesConvolveSame) {
  const cvec x = window_vec(200, 108);
  const cvec h = window_vec(7, 109);
  const cvec full = convolve_same(x, h);
  cvec out(17, cplx{3.0, -4.0});  // dirty and wrongly sized
  convolve_same_into(x, h, out);
  ASSERT_EQ(out.size(), full.size());
  for (std::size_t i = 0; i < full.size(); ++i) ASSERT_EQ(out[i], full[i]) << i;
}

TEST(FirTest, ConvolveSameSubtractIntoMatchesMaterializedSubtract) {
  for (const std::size_t taps : {std::size_t{6}, fft_convolve_min_taps + 3}) {
    const cvec x = window_vec(400, 110 + taps);
    const cvec rx = window_vec(420, 111 + taps);  // longer rx: plain tail copy
    const cvec h = window_vec(taps, 112 + taps);
    const cvec conv = convolve_same(x, h);
    cvec out;
    convolve_same_subtract_into(rx, x, h, out);
    ASSERT_EQ(out.size(), rx.size());
    for (std::size_t i = 0; i < rx.size(); ++i) {
      const cplx want = i < x.size() ? rx[i] - conv[i] : rx[i];
      ASSERT_EQ(out[i], want) << "taps " << taps << " sample " << i;
    }
  }
}

TEST(FirTest, ConvolveSameSubtractEnergyMatchesSeparatePasses) {
  // The fused energy accumulation must be bit-identical to running
  // dsp::energy over the output afterwards — the receive chain's AGC full
  // scale (and so every digitized bit downstream) hangs off these bits.
  for (const std::size_t taps :
       {std::size_t{1}, std::size_t{6}, std::size_t{8}, std::size_t{15},
        fft_convolve_min_taps + 3}) {
    for (const std::size_t nx : {std::size_t{5}, std::size_t{37},
                                 std::size_t{400}, std::size_t{1033}}) {
      const cvec x = window_vec(nx, 150 + taps + nx);
      const cvec rx = window_vec(nx + 20, 151 + taps + nx);  // plain tail
      const cvec h = window_vec(taps, 152 + taps + nx);
      cvec reference;
      convolve_same_subtract_into(rx, x, h, reference);
      cvec out;
      const double fused = convolve_same_subtract_energy_into(rx, x, h, out);
      ASSERT_EQ(out.size(), reference.size());
      for (std::size_t i = 0; i < reference.size(); ++i)
        ASSERT_EQ(out[i], reference[i]) << taps << "x" << nx << " @" << i;
      ASSERT_EQ(fused, energy(out)) << taps << "x" << nx;
    }
  }
  // Degenerate operands follow convolve_same_subtract_into's copy path.
  const cvec rx = window_vec(64, 153);
  cvec out;
  EXPECT_EQ(convolve_same_subtract_energy_into(rx, {}, {}, out), energy(rx));
  ASSERT_EQ(out.size(), rx.size());
  for (std::size_t i = 0; i < rx.size(); ++i) ASSERT_EQ(out[i], rx[i]);
}

}  // namespace
}  // namespace backfi::dsp
