#include "dsp/window.h"

#include <gtest/gtest.h>

#include "dsp/math_util.h"
#include "dsp/rng.h"

namespace backfi::dsp {
namespace {

TEST(WindowTest, RectangularIsAllOnes) {
  const rvec w = rectangular_window(10);
  for (double v : w) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(WindowTest, HammingEndpointsAndSymmetry) {
  const rvec w = hamming_window(33);
  EXPECT_NEAR(w[0], 0.08, 1e-12);
  EXPECT_NEAR(w[32], 0.08, 1e-12);
  EXPECT_NEAR(w[16], 1.0, 1e-12);
  for (std::size_t i = 0; i < w.size(); ++i)
    EXPECT_NEAR(w[i], w[w.size() - 1 - i], 1e-12);
}

TEST(WindowTest, HannEndpointsAreZero) {
  const rvec w = hann_window(17);
  EXPECT_NEAR(w[0], 0.0, 1e-12);
  EXPECT_NEAR(w[16], 0.0, 1e-12);
  EXPECT_NEAR(w[8], 1.0, 1e-12);
}

TEST(WindowTest, BlackmanNonNegativePeakCentred) {
  const rvec w = blackman_window(65);
  for (double v : w) EXPECT_GE(v, -1e-12);
  EXPECT_NEAR(w[32], 1.0, 1e-12);
}

TEST(WindowTest, ApplyWindowMultiplies) {
  const cvec x = {{2.0, 2.0}, {4.0, 0.0}};
  const rvec w = {0.5, 0.25};
  const cvec y = apply_window(x, w);
  EXPECT_NEAR(std::abs(y[0] - cplx(1.0, 1.0)), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(y[1] - cplx(1.0, 0.0)), 0.0, 1e-15);
}

TEST(WindowTest, WelchPsdLocatesTone) {
  const std::size_t nfft = 64;
  const std::size_t bin = 12;
  cvec x(1024);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = phasor(two_pi * static_cast<double>(bin * i) / static_cast<double>(nfft));
  const rvec psd = welch_psd(x, nfft);
  std::size_t peak = 0;
  for (std::size_t k = 1; k < psd.size(); ++k)
    if (psd[k] > psd[peak]) peak = k;
  EXPECT_EQ(peak, bin);
}

TEST(WindowTest, WelchPsdOfWhiteNoiseIsFlat) {
  rng gen(50);
  cvec x(1 << 14);
  for (auto& v : x) v = gen.complex_gaussian();
  const rvec psd = welch_psd(x, 64);
  double mean = 0.0;
  for (double v : psd) mean += v;
  mean /= static_cast<double>(psd.size());
  for (double v : psd) {
    EXPECT_GT(v, mean * 0.5);
    EXPECT_LT(v, mean * 2.0);
  }
}

}  // namespace
}  // namespace backfi::dsp
