#include "dsp/math_util.h"

#include <gtest/gtest.h>

namespace backfi::dsp {
namespace {

TEST(MathUtilTest, DbConversionsRoundTrip) {
  for (double db : {-115.0, -20.0, 0.0, 3.0, 40.2}) {
    EXPECT_NEAR(to_db(from_db(db)), db, 1e-12);
  }
  EXPECT_NEAR(from_db(3.0103), 2.0, 1e-4);
  EXPECT_NEAR(to_db(100.0), 20.0, 1e-12);
}

TEST(MathUtilTest, AmplitudeVsPowerDb) {
  // -20 dB power = 0.1 amplitude.
  EXPECT_NEAR(db_to_amplitude(-20.0), 0.1, 1e-12);
  EXPECT_NEAR(db_to_amplitude(6.0206), 2.0, 1e-4);
}

TEST(MathUtilTest, DbmWattsRoundTrip) {
  EXPECT_NEAR(dbm_to_watts(0.0), 1e-3, 1e-15);
  EXPECT_NEAR(dbm_to_watts(30.0), 1.0, 1e-12);
  EXPECT_NEAR(watts_to_dbm(dbm_to_watts(-95.0)), -95.0, 1e-9);
}

TEST(MathUtilTest, WrapPhaseIntoHalfOpenInterval) {
  EXPECT_NEAR(wrap_phase(0.0), 0.0, 1e-15);
  EXPECT_NEAR(wrap_phase(3.0 * pi), pi, 1e-12);
  EXPECT_NEAR(wrap_phase(-3.0 * pi), pi, 1e-12);
  EXPECT_NEAR(wrap_phase(two_pi + 0.5), 0.5, 1e-12);
  for (double raw : {-10.0, -1.0, 4.0, 100.0}) {
    const double w = wrap_phase(raw);
    EXPECT_GT(w, -pi - 1e-15);
    EXPECT_LE(w, pi + 1e-15);
    // Same angle modulo 2*pi.
    EXPECT_NEAR(std::remainder(raw - w, two_pi), 0.0, 1e-9);
  }
}

TEST(MathUtilTest, SincValues) {
  EXPECT_DOUBLE_EQ(sinc(0.0), 1.0);
  EXPECT_NEAR(sinc(1.0), 0.0, 1e-15);
  EXPECT_NEAR(sinc(2.0), 0.0, 1e-15);
  EXPECT_NEAR(sinc(0.5), 2.0 / pi, 1e-12);
}

TEST(MathUtilTest, PhasorOnUnitCircle) {
  for (double angle : {0.0, 0.5, -2.0, 3.1}) {
    const cplx p = phasor(angle);
    EXPECT_NEAR(std::abs(p), 1.0, 1e-15);
    EXPECT_NEAR(std::arg(p), wrap_phase(angle), 1e-12);
  }
}

}  // namespace
}  // namespace backfi::dsp
