#include "dsp/correlation.h"

#include <gtest/gtest.h>

#include "dsp/math_util.h"
#include "dsp/rng.h"

namespace backfi::dsp {
namespace {

cvec random_sequence(std::size_t n, std::uint64_t seed) {
  rng gen(seed);
  cvec x(n);
  for (auto& v : x) v = gen.complex_gaussian();
  return x;
}

TEST(CorrelationTest, PeakAtEmbeddedReferenceOffset) {
  const cvec ref = random_sequence(32, 1);
  cvec signal(200, cplx{0.0, 0.0});
  const std::size_t offset = 77;
  for (std::size_t i = 0; i < ref.size(); ++i) signal[offset + i] = ref[i];

  const rvec metric = normalized_correlation(signal, ref);
  std::size_t best = 0;
  for (std::size_t i = 1; i < metric.size(); ++i)
    if (metric[i] > metric[best]) best = i;
  EXPECT_EQ(best, offset);
  EXPECT_NEAR(metric[best], 1.0, 1e-9);
}

TEST(CorrelationTest, NormalizedCorrelationInvariantToScaling) {
  const cvec ref = random_sequence(16, 2);
  cvec signal(100, cplx{0.0, 0.0});
  for (std::size_t i = 0; i < ref.size(); ++i) signal[40 + i] = ref[i] * cplx{0.0, 3.0};
  const rvec metric = normalized_correlation(signal, ref);
  EXPECT_NEAR(metric[40], 1.0, 1e-9);
}

TEST(CorrelationTest, FindPeakHonoursThreshold) {
  const cvec ref = random_sequence(16, 3);
  cvec signal = random_sequence(128, 4);  // noise only
  const auto miss = find_correlation_peak(signal, ref, 0.95);
  EXPECT_FALSE(miss.found);

  for (std::size_t i = 0; i < ref.size(); ++i) signal[60 + i] = ref[i] * 4.0;
  const auto hit = find_correlation_peak(signal, ref, 0.9);
  ASSERT_TRUE(hit.found);
  EXPECT_EQ(hit.index, 60u);
}

TEST(CorrelationTest, CrossCorrelateMatchesDirectComputation) {
  const cvec signal = random_sequence(20, 5);
  const cvec ref = random_sequence(4, 6);
  const cvec out = cross_correlate(signal, ref);
  ASSERT_EQ(out.size(), 17u);
  for (std::size_t n = 0; n < out.size(); ++n) {
    cplx expected{0.0, 0.0};
    for (std::size_t k = 0; k < ref.size(); ++k)
      expected += signal[n + k] * std::conj(ref[k]);
    EXPECT_NEAR(std::abs(out[n] - expected), 0.0, 1e-12);
  }
}

TEST(CorrelationTest, TooShortSignalGivesEmpty) {
  const cvec ref = random_sequence(16, 7);
  const cvec signal = random_sequence(8, 8);
  EXPECT_TRUE(cross_correlate(signal, ref).empty());
  EXPECT_TRUE(normalized_correlation(signal, ref).empty());
}

TEST(CorrelationTest, DelayedAutocorrelationDetectsPeriodicity) {
  // A signal with period 16 has autocorrelation metric ~1 at lag 16.
  const std::size_t lag = 16;
  cvec periodic;
  const cvec seed = random_sequence(lag, 9);
  for (int rep = 0; rep < 6; ++rep)
    periodic.insert(periodic.end(), seed.begin(), seed.end());

  const rvec metric = delayed_autocorrelation(periodic, lag);
  ASSERT_FALSE(metric.empty());
  for (std::size_t i = 0; i < metric.size(); ++i) EXPECT_NEAR(metric[i], 1.0, 1e-9);

  const cvec noise = random_sequence(96, 10);
  const rvec noise_metric = delayed_autocorrelation(noise, lag);
  double mean = 0.0;
  for (double v : noise_metric) mean += v;
  mean /= static_cast<double>(noise_metric.size());
  EXPECT_LT(mean, 0.6);
}

}  // namespace
}  // namespace backfi::dsp
