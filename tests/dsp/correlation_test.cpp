#include "dsp/correlation.h"

#include <gtest/gtest.h>

#include "dsp/math_util.h"
#include "dsp/rng.h"
#include "dsp/vec_ops.h"

namespace backfi::dsp {
namespace {

cvec random_sequence(std::size_t n, std::uint64_t seed) {
  rng gen(seed);
  cvec x(n);
  for (auto& v : x) v = gen.complex_gaussian();
  return x;
}

TEST(CorrelationTest, PeakAtEmbeddedReferenceOffset) {
  const cvec ref = random_sequence(32, 1);
  cvec signal(200, cplx{0.0, 0.0});
  const std::size_t offset = 77;
  for (std::size_t i = 0; i < ref.size(); ++i) signal[offset + i] = ref[i];

  const rvec metric = normalized_correlation(signal, ref);
  std::size_t best = 0;
  for (std::size_t i = 1; i < metric.size(); ++i)
    if (metric[i] > metric[best]) best = i;
  EXPECT_EQ(best, offset);
  EXPECT_NEAR(metric[best], 1.0, 1e-9);
}

TEST(CorrelationTest, NormalizedCorrelationInvariantToScaling) {
  const cvec ref = random_sequence(16, 2);
  cvec signal(100, cplx{0.0, 0.0});
  for (std::size_t i = 0; i < ref.size(); ++i) signal[40 + i] = ref[i] * cplx{0.0, 3.0};
  const rvec metric = normalized_correlation(signal, ref);
  EXPECT_NEAR(metric[40], 1.0, 1e-9);
}

TEST(CorrelationTest, FindPeakHonoursThreshold) {
  const cvec ref = random_sequence(16, 3);
  cvec signal = random_sequence(128, 4);  // noise only
  const auto miss = find_correlation_peak(signal, ref, 0.95);
  EXPECT_FALSE(miss.found);

  for (std::size_t i = 0; i < ref.size(); ++i) signal[60 + i] = ref[i] * 4.0;
  const auto hit = find_correlation_peak(signal, ref, 0.9);
  ASSERT_TRUE(hit.found);
  EXPECT_EQ(hit.index, 60u);
}

TEST(CorrelationTest, CrossCorrelateMatchesDirectComputation) {
  const cvec signal = random_sequence(20, 5);
  const cvec ref = random_sequence(4, 6);
  const cvec out = cross_correlate(signal, ref);
  ASSERT_EQ(out.size(), 17u);
  for (std::size_t n = 0; n < out.size(); ++n) {
    cplx expected{0.0, 0.0};
    for (std::size_t k = 0; k < ref.size(); ++k)
      expected += signal[n + k] * std::conj(ref[k]);
    EXPECT_NEAR(std::abs(out[n] - expected), 0.0, 1e-12);
  }
}

TEST(CorrelationTest, TooShortSignalGivesEmpty) {
  const cvec ref = random_sequence(16, 7);
  const cvec signal = random_sequence(8, 8);
  EXPECT_TRUE(cross_correlate(signal, ref).empty());
  EXPECT_TRUE(normalized_correlation(signal, ref).empty());
}

TEST(CorrelationTest, FftPathMatchesDirectForLongReferences) {
  // A 128-sample reference is above fft_convolve_min_taps, so
  // cross_correlate takes the overlap-save path; it must agree with the
  // direct loop to FFT rounding.
  const cvec signal = random_sequence(4096, 11);
  const cvec ref = random_sequence(128, 12);
  const cvec direct = cross_correlate_direct(signal, ref);
  const cvec fast = cross_correlate(signal, ref);
  ASSERT_EQ(fast.size(), direct.size());
  double scale = 0.0;
  for (const cplx& v : direct) scale = std::max(scale, std::abs(v));
  for (std::size_t n = 0; n < direct.size(); ++n)
    EXPECT_NEAR(std::abs(fast[n] - direct[n]) / scale, 0.0, 1e-9) << "n=" << n;
}

TEST(CorrelationTest, WindowEnergyDoesNotDriftOverLongCaptures) {
  // A capture that opens with a big transient and then goes quiet: the
  // incremental energy update leaves a residue of the large values'
  // rounding error, which swamps the tiny true energy deep into the buffer
  // unless the window energy is periodically rebuilt. With the periodic
  // exact refresh, the metric must match a per-position exact computation.
  const std::size_t ref_len = 16;
  const cvec ref = random_sequence(ref_len, 13);
  rng gen(14);
  cvec signal(3 * normalized_correlation_refresh_interval);
  for (std::size_t i = 0; i < signal.size(); ++i) {
    const double amp = i < 512 ? 1e8 : 1e-4;
    signal[i] = gen.complex_gaussian() * amp;
  }
  // Plant one scaled reference copy late in the quiet region.
  const std::size_t offset = signal.size() - 2 * ref_len;
  for (std::size_t i = 0; i < ref_len; ++i)
    signal[offset + i] = ref[i] * cplx{2e-4, 1e-4};

  const rvec metric = normalized_correlation(signal, ref);
  const double ref_norm = std::sqrt(energy(ref));
  ASSERT_EQ(metric.size(), signal.size() - ref_len + 1);
  for (std::size_t n = signal.size() / 2; n < metric.size(); n += 257) {
    cplx acc{0.0, 0.0};
    double window = 0.0;
    for (std::size_t k = 0; k < ref_len; ++k) {
      acc += signal[n + k] * std::conj(ref[k]);
      window += std::norm(signal[n + k]);
    }
    const double exact = std::abs(acc) / (std::sqrt(window) * ref_norm);
    EXPECT_NEAR(metric[n], exact, 1e-6 * std::max(exact, 1.0)) << "n=" << n;
  }
  // The planted copy still produces a clean normalized peak.
  EXPECT_NEAR(metric[offset], 1.0, 1e-6);
}

TEST(CorrelationTest, DelayedAutocorrelationDetectsPeriodicity) {
  // A signal with period 16 has autocorrelation metric ~1 at lag 16.
  const std::size_t lag = 16;
  cvec periodic;
  const cvec seed = random_sequence(lag, 9);
  for (int rep = 0; rep < 6; ++rep)
    periodic.insert(periodic.end(), seed.begin(), seed.end());

  const rvec metric = delayed_autocorrelation(periodic, lag);
  ASSERT_FALSE(metric.empty());
  for (std::size_t i = 0; i < metric.size(); ++i) EXPECT_NEAR(metric[i], 1.0, 1e-9);

  const cvec noise = random_sequence(96, 10);
  const rvec noise_metric = delayed_autocorrelation(noise, lag);
  double mean = 0.0;
  for (double v : noise_metric) mean += v;
  mean /= static_cast<double>(noise_metric.size());
  EXPECT_LT(mean, 0.6);
}

}  // namespace
}  // namespace backfi::dsp
