#include "dsp/replay_cache.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace backfi::dsp {
namespace {

struct key {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  bool operator==(const key&) const = default;
};

struct key_hash {
  std::size_t operator()(const key& k) const {
    return static_cast<std::size_t>(hash_mix_u64(hash_mix_u64(0, k.a), k.b));
  }
};

using cache = replay_cache<key, std::vector<int>, key_hash>;

TEST(ReplayCacheTest, FindAfterInsertReturnsSameObject) {
  cache c(1 << 20);
  EXPECT_EQ(c.find({1, 2}), nullptr);
  auto value = std::make_shared<const std::vector<int>>(std::vector<int>{1, 2, 3});
  c.insert({1, 2}, value, 64);
  const auto hit = c.find({1, 2});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit.get(), value.get());
  const auto s = c.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.bytes, 64u);
}

TEST(ReplayCacheTest, FirstWriterWins) {
  cache c(1 << 20);
  auto first = std::make_shared<const std::vector<int>>(std::vector<int>{1});
  auto second = std::make_shared<const std::vector<int>>(std::vector<int>{2});
  c.insert({7, 7}, first, 16);
  c.insert({7, 7}, second, 16);
  EXPECT_EQ(c.find({7, 7}).get(), first.get());
  EXPECT_EQ(c.stats().entries, 1u);
  EXPECT_EQ(c.stats().bytes, 16u);
}

TEST(ReplayCacheTest, EvictsLeastRecentlyUsedUnderBudget) {
  cache c(100);
  auto value = std::make_shared<const std::vector<int>>();
  c.insert({1, 0}, value, 40);
  c.insert({2, 0}, value, 40);
  EXPECT_NE(c.find({1, 0}), nullptr);  // touch 1 so 2 is the LRU entry
  c.insert({3, 0}, value, 40);         // over budget: evict key 2
  EXPECT_NE(c.find({1, 0}), nullptr);
  EXPECT_EQ(c.find({2, 0}), nullptr);
  EXPECT_NE(c.find({3, 0}), nullptr);
  const auto s = c.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 2u);
  EXPECT_LE(s.bytes, 100u);
}

TEST(ReplayCacheTest, OversizedValueIsDropped) {
  cache c(100);
  auto value = std::make_shared<const std::vector<int>>();
  c.insert({1, 0}, value, 1000);
  EXPECT_EQ(c.find({1, 0}), nullptr);
  EXPECT_EQ(c.stats().entries, 0u);
}

TEST(ReplayCacheTest, DisabledCacheIsInert) {
  cache c(0);
  EXPECT_FALSE(c.enabled());
  auto value = std::make_shared<const std::vector<int>>();
  c.insert({1, 0}, value, 8);
  EXPECT_EQ(c.find({1, 0}), nullptr);
  const auto s = c.stats();
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.misses, 0u);
  EXPECT_EQ(s.entries, 0u);
}

TEST(ReplayCacheTest, ConcurrentFindersAndInsertersSurvive) {
  cache c(1 << 16);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&c, t] {
      for (int i = 0; i < 500; ++i) {
        const key k{static_cast<std::uint64_t>(i % 37), 0};
        if (!c.find(k)) {
          auto value = std::make_shared<const std::vector<int>>(
              std::vector<int>{i % 37});
          c.insert(k, value, 32);
        }
        const auto hit = c.find(k);
        if (hit) {
          EXPECT_EQ(hit->at(0), i % 37) << "thread " << t;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_LE(c.stats().entries, 37u);
}

TEST(ReplayCacheTest, BudgetFromEnvironment) {
  ::setenv("BACKFI_TEST_CACHE_MB", "3", 1);
  EXPECT_EQ(cache_budget_bytes("BACKFI_TEST_CACHE_MB", 64),
            std::size_t{3} << 20);
  ::setenv("BACKFI_TEST_CACHE_MB", "0", 1);
  EXPECT_EQ(cache_budget_bytes("BACKFI_TEST_CACHE_MB", 64), 0u);
  ::setenv("BACKFI_TEST_CACHE_MB", "garbage", 1);
  EXPECT_EQ(cache_budget_bytes("BACKFI_TEST_CACHE_MB", 64),
            std::size_t{64} << 20);
  ::unsetenv("BACKFI_TEST_CACHE_MB");
  EXPECT_EQ(cache_budget_bytes("BACKFI_TEST_CACHE_MB", 64),
            std::size_t{64} << 20);
}

}  // namespace
}  // namespace backfi::dsp
