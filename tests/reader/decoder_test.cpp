#include "reader/decoder.h"
#include "reader/decoder_kernels.h"

#include <gtest/gtest.h>
#include <cstdint>
#include <stdexcept>
#include <string>

#include <limits>

#include "channel/awgn.h"
#include "dsp/fir.h"
#include "dsp/math_util.h"
#include "dsp/vec_ops.h"
#include "reader/excitation.h"

namespace backfi::reader {
namespace {

/// A synthetic backscatter exchange with controllable channels/noise and
/// no cancellation stage (the decoder sees backscatter + noise directly).
struct exchange {
  cvec x;          // excitation
  cvec y;          // backscatter + noise at the reader
  phy::bitvec payload;
  std::size_t origin;       // true tag time origin
  std::size_t nominal;      // reader's assumed origin
};

exchange make_exchange(const tag::tag_config& tag_cfg, std::size_t payload_bits,
                       double noise_db, int jitter, std::uint64_t seed) {
  dsp::rng gen(seed);
  exchange ex;
  excitation_config ex_cfg;
  ex_cfg.tag_id = tag_cfg.id;
  ex_cfg.ppdu_bytes = 4000;
  ex_cfg.n_ppdus = 2;
  ex_cfg.payload_seed = seed;
  const excitation e = build_excitation(ex_cfg);
  ex.x = e.samples;
  ex.nominal = e.wake_end;
  ex.origin = e.wake_end + static_cast<std::size_t>(jitter);

  const cvec h_f = {cplx{5e-3, 1e-3}, cplx{1e-3, -5e-4}};
  const cvec h_b = {cplx{4e-3, -2e-3}, cplx{8e-4, 6e-4}};

  ex.payload = gen.random_bits(payload_bits);
  const tag::tag_device device(tag_cfg);
  const auto tag_tx = device.backscatter(ex.payload, ex.x.size(), ex.origin);

  const cvec incident = dsp::convolve_same(ex.x, h_f);
  const cvec reflected = dsp::hadamard(incident, tag_tx.reflection);
  ex.y = dsp::convolve_same(reflected, h_b);
  channel::add_awgn(ex.y, dsp::from_db(noise_db), gen);
  return ex;
}

tag::tag_config default_tag() {
  tag::tag_config cfg;
  cfg.id = 4;
  cfg.rate = {tag::tag_modulation::qpsk, phy::code_rate::half, 1e6};
  return cfg;
}

TEST(DecoderTest, DecodesCleanExchange) {
  const auto ex = make_exchange(default_tag(), 400, -120.0, 0, 1);
  const backfi_decoder decoder(default_tag());
  const auto result = decoder.decode(ex.x, ex.y, ex.nominal, 400);
  ASSERT_TRUE(result.sync_found);
  ASSERT_TRUE(result.decoded);
  EXPECT_TRUE(result.crc_ok);
  EXPECT_EQ(result.payload, ex.payload);
  EXPECT_EQ(result.timing_offset, 0);
  EXPECT_GT(result.post_mrc_snr_db, 25.0);
}

TEST(DecoderTest, RecoversTagTimingJitter) {
  for (int jitter : {3, 9, 17}) {
    const auto ex = make_exchange(default_tag(), 300, -110.0, jitter,
                                  static_cast<std::uint64_t>(jitter));
    const backfi_decoder decoder(default_tag());
    const auto result = decoder.decode(ex.x, ex.y, ex.nominal, 300);
    ASSERT_TRUE(result.crc_ok) << jitter;
    EXPECT_EQ(result.payload, ex.payload) << jitter;
    // The score is flat over offsets the guard absorbs; only coarse
    // agreement is required for correct decoding.
    EXPECT_NEAR(result.timing_offset, jitter, 6) << jitter;
  }
}

class DecoderModulationTest
    : public ::testing::TestWithParam<std::tuple<tag::tag_modulation,
                                                 phy::code_rate, double>> {};

TEST_P(DecoderModulationTest, DecodesAllTagRates) {
  const auto [mod, coding, symbol_rate] = GetParam();
  tag::tag_config cfg = default_tag();
  cfg.rate = {mod, coding, symbol_rate};
  const auto ex = make_exchange(cfg, 200, -112.0, 5, 42);
  const backfi_decoder decoder(cfg);
  const auto result = decoder.decode(ex.x, ex.y, ex.nominal, 200);
  ASSERT_TRUE(result.crc_ok);
  EXPECT_EQ(result.payload, ex.payload);
}

INSTANTIATE_TEST_SUITE_P(
    RateMatrix, DecoderModulationTest,
    ::testing::Values(
        std::make_tuple(tag::tag_modulation::bpsk, phy::code_rate::half, 1e6),
        std::make_tuple(tag::tag_modulation::bpsk, phy::code_rate::two_thirds, 2e6),
        std::make_tuple(tag::tag_modulation::qpsk, phy::code_rate::half, 2.5e6),
        std::make_tuple(tag::tag_modulation::qpsk, phy::code_rate::two_thirds, 5e5),
        std::make_tuple(tag::tag_modulation::psk16, phy::code_rate::half, 1e6),
        std::make_tuple(tag::tag_modulation::psk16, phy::code_rate::two_thirds,
                        2.5e6)));

TEST(DecoderTest, FailsGracefullyOnPureNoise) {
  const auto ex = make_exchange(default_tag(), 300, -110.0, 0, 7);
  cvec noise(ex.y.size());
  dsp::rng gen(9);
  for (auto& v : noise) v = 1e-5 * gen.complex_gaussian();
  const backfi_decoder decoder(default_tag());
  const auto result = decoder.decode(ex.x, noise, ex.nominal, 300);
  EXPECT_FALSE(result.sync_found);
  EXPECT_FALSE(result.crc_ok);
}

TEST(DecoderTest, CrcCatchesResidualErrors) {
  // Heavy noise: if decoding completes, corrupted payloads must be flagged.
  int crc_false_accepts = 0;
  for (int t = 0; t < 10; ++t) {
    const auto ex = make_exchange(default_tag(), 300, -63.0, 0,
                                  static_cast<std::uint64_t>(t) + 100);
    const backfi_decoder decoder(default_tag());
    const auto result = decoder.decode(ex.x, ex.y, ex.nominal, 300);
    if (result.decoded && result.crc_ok && result.payload != ex.payload)
      ++crc_false_accepts;
  }
  EXPECT_EQ(crc_false_accepts, 0);
}

TEST(DecoderTest, SnrEstimateTracksNoiseLevel) {
  const auto quiet = make_exchange(default_tag(), 300, -115.0, 0, 11);
  const auto loud = make_exchange(default_tag(), 300, -95.0, 0, 11);
  const backfi_decoder decoder(default_tag());
  const auto r_quiet = decoder.decode(quiet.x, quiet.y, quiet.nominal, 300);
  const auto r_loud = decoder.decode(loud.x, loud.y, loud.nominal, 300);
  ASSERT_TRUE(r_quiet.sync_found);
  ASSERT_TRUE(r_loud.sync_found);
  EXPECT_GT(r_quiet.post_mrc_snr_db, r_loud.post_mrc_snr_db + 10.0);
}

TEST(DecoderTest, CombinedChannelEstimateMatchesTruth) {
  const tag::tag_config cfg = default_tag();
  const auto ex = make_exchange(cfg, 300, -120.0, 0, 13);
  const backfi_decoder decoder(cfg);
  const auto result = decoder.decode(ex.x, ex.y, ex.nominal, 300);
  ASSERT_TRUE(result.crc_ok);
  // True combined channel (with the tag's reflection amplitude and the
  // constant preamble phase absorbed).
  const cvec h_f = {cplx{5e-3, 1e-3}, cplx{1e-3, -5e-4}};
  const cvec h_b = {cplx{4e-3, -2e-3}, cplx{8e-4, 6e-4}};
  const cvec h_fb = dsp::convolve(h_f, h_b);
  const double amp = dsp::db_to_amplitude(-cfg.insertion_loss_db);
  ASSERT_GE(result.h_fb.size(), h_fb.size());
  for (std::size_t k = 0; k < h_fb.size(); ++k) {
    EXPECT_NEAR(std::abs(result.h_fb[k] - h_fb[k] * amp),
                0.0, 0.05 * std::abs(h_fb[0])) << k;
  }
}

TEST(DecoderTest, ReturnsEarlyWhenPayloadCannotFit) {
  const auto ex = make_exchange(default_tag(), 300, -120.0, 0, 15);
  const backfi_decoder decoder(default_tag());
  // Absurd payload size: cannot fit in the excitation.
  const auto result = decoder.decode(ex.x, ex.y, ex.nominal, 1000000);
  EXPECT_FALSE(result.decoded);
  EXPECT_FALSE(result.crc_ok);
  EXPECT_EQ(result.failure, decode_failure::payload_too_long);
}

TEST(DecoderTest, EmptyInputYieldsTypedFailure) {
  const backfi_decoder decoder(default_tag());
  const auto result = decoder.decode({}, {}, 0, 100);
  EXPECT_FALSE(result.decoded);
  EXPECT_EQ(result.failure, decode_failure::empty_input);
}

TEST(DecoderTest, MismatchedBufferLengthsYieldTypedFailure) {
  const auto ex = make_exchange(default_tag(), 300, -120.0, 0, 16);
  const backfi_decoder decoder(default_tag());
  const auto result = decoder.decode(
      ex.x, std::span(ex.y).first(ex.y.size() - 7), ex.nominal, 300);
  EXPECT_FALSE(result.decoded);
  EXPECT_EQ(result.failure, decode_failure::size_mismatch);
}

TEST(DecoderTest, OriginPastBufferEndYieldsTypedFailure) {
  const auto ex = make_exchange(default_tag(), 300, -120.0, 0, 17);
  const backfi_decoder decoder(default_tag());
  const auto result = decoder.decode(ex.x, ex.y, ex.y.size(), 300);
  EXPECT_FALSE(result.decoded);
  EXPECT_EQ(result.failure, decode_failure::origin_out_of_range);
}

TEST(DecoderTest, ZeroPayloadYieldsTypedFailure) {
  const auto ex = make_exchange(default_tag(), 300, -120.0, 0, 18);
  const backfi_decoder decoder(default_tag());
  const auto result = decoder.decode(ex.x, ex.y, ex.nominal, 0);
  EXPECT_FALSE(result.decoded);
  EXPECT_EQ(result.failure, decode_failure::zero_payload);
}

TEST(DecoderTest, NonFiniteSamplesYieldTypedFailure) {
  auto ex = make_exchange(default_tag(), 300, -120.0, 0, 19);
  // Inside the estimation preamble (the silent period before it is no
  // longer scanned: the finite check covers only the samples the decoder
  // reads, see NonFiniteSamplesOutsideDecodeWindowStillDecode).
  const std::size_t silent_samples = 20 * default_tag().silent_us;
  ex.y[ex.nominal + silent_samples + 100] =
      cplx{std::numeric_limits<double>::quiet_NaN(), 0.0};
  const backfi_decoder decoder(default_tag());
  const auto result = decoder.decode(ex.x, ex.y, ex.nominal, 300);
  EXPECT_FALSE(result.decoded);
  EXPECT_EQ(result.failure, decode_failure::non_finite_samples);
}

TEST(FiniteWindowKernelTest, FlagsEveryLanePositionAndKind) {
  // The vectorized finite scan checks four doubles per compare; a NaN/inf
  // must be caught at every lane alignment, in either component, in either
  // buffer, including the scalar remainder tail and the window edges.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const std::size_t n = 67;  // odd: exercises the remainder path
  const cvec clean(n, cplx{1.0, -1.0});
  EXPECT_TRUE(detail::all_finite_window(clean, clean, 0, n));
  EXPECT_TRUE(detail::all_finite_window(clean, clean, 5, 5));  // empty window
  for (const double bad : {nan, inf, -inf}) {
    for (std::size_t pos : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                            std::size_t{3}, std::size_t{4}, std::size_t{33},
                            n - 2, n - 1}) {
      for (int component = 0; component < 2; ++component) {
        for (int buffer = 0; buffer < 2; ++buffer) {
          cvec x = clean, y = clean;
          cvec& target = buffer == 0 ? x : y;
          target[pos] = component == 0 ? cplx{bad, 0.0} : cplx{0.0, bad};
          EXPECT_FALSE(detail::all_finite_window(x, y, 0, n))
              << bad << " at " << pos;
          // Outside the scanned window the same value must not trip it.
          if (pos + 1 < n) {
            EXPECT_TRUE(detail::all_finite_window(x, y, 0, pos))
                << bad << " at " << pos;
          }
          EXPECT_TRUE(detail::all_finite_window(x, y, pos + 1, n))
              << bad << " at " << pos;
        }
      }
    }
  }
}

TEST(DecoderTest, SuccessfulDecodeReportsNoFailure) {
  const auto ex = make_exchange(default_tag(), 300, -120.0, 0, 20);
  const backfi_decoder decoder(default_tag());
  const auto result = decoder.decode(ex.x, ex.y, ex.nominal, 300);
  ASSERT_TRUE(result.crc_ok);
  EXPECT_EQ(result.failure, decode_failure::none);
  EXPECT_STREQ(to_string(result.failure), "none");
}

TEST(DecoderTest, PhaseTrackingAbsorbsSlowResidualRotation) {
  // A slow phase ramp across the capture (stale canceller / residual CFO
  // at the front end): the single sync-word correction cannot follow it,
  // the decision-directed loop can.
  const tag::tag_config tag_cfg = default_tag();
  auto ex = make_exchange(tag_cfg, 300, -120.0, 0, 21);
  // ~2 rad of drift across the ~6000-sample payload: far beyond the QPSK
  // slicing margin (pi/4) of the single sync-anchored correction, yet only
  // ~6 mrad per symbol for the tracking loop.
  const double ramp = 3e-4;
  for (std::size_t n = 0; n < ex.y.size(); ++n)
    ex.y[n] *= std::polar(1.0, ramp * static_cast<double>(n));

  decoder_config no_tracking;
  no_tracking.phase_tracking = false;
  const backfi_decoder plain(tag_cfg, no_tracking);
  const backfi_decoder tracking(tag_cfg);
  const auto without = plain.decode(ex.x, ex.y, ex.nominal, 300);
  const auto with = tracking.decode(ex.x, ex.y, ex.nominal, 300);
  EXPECT_FALSE(without.crc_ok);
  EXPECT_TRUE(with.crc_ok);
}


TEST(DecoderTest, NonFiniteSamplesOutsideDecodeWindowStillDecode) {
  // The finite scan is restricted to the samples the pipeline actually
  // reads (estimation window through payload end plus the widest timing
  // search). Garbage in the wake region or far past the payload — which a
  // co-channel burst can easily leave in the capture — must not veto an
  // otherwise clean decode.
  auto ex = make_exchange(default_tag(), 300, -120.0, 0, 23);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  ex.y[0] = cplx{nan, nan};                // wake region, before the window
  ex.y[ex.y.size() - 1] = cplx{nan, 0.0};  // far past the payload symbols
  ex.x[1] = cplx{0.0, nan};                // x is scanned over the same window
  const backfi_decoder decoder(default_tag());
  const auto result = decoder.decode(ex.x, ex.y, ex.nominal, 300);
  ASSERT_TRUE(result.decoded);
  EXPECT_EQ(result.failure, decode_failure::none);
  EXPECT_TRUE(result.crc_ok);
  EXPECT_EQ(result.payload, ex.payload);
}

TEST(DecoderTest, ScratchDecodeBitIdenticalToAllocatingDecode) {
  const auto ex = make_exchange(default_tag(), 300, -112.0, 5, 24);
  const backfi_decoder decoder(default_tag());
  const auto plain = decoder.decode(ex.x, ex.y, ex.nominal, 300);
  ASSERT_TRUE(plain.crc_ok);

  // Dirty the scratch with a different exchange first: decode results must
  // be independent of scratch history.
  decoder_scratch scratch;
  dsp::workspace_stats stats;
  scratch.stats = &stats;
  const auto other = make_exchange(default_tag(), 200, -110.0, 3, 25);
  decoder.decode(other.x, other.y, other.nominal, 200, &scratch);

  const auto ws = decoder.decode(ex.x, ex.y, ex.nominal, 300, &scratch);
  EXPECT_EQ(ws.crc_ok, plain.crc_ok);
  EXPECT_EQ(ws.failure, plain.failure);
  EXPECT_EQ(ws.payload, plain.payload);
  EXPECT_EQ(ws.timing_offset, plain.timing_offset);
  EXPECT_EQ(ws.sync_attempts, plain.sync_attempts);
  EXPECT_EQ(ws.sync_correlation, plain.sync_correlation);
  EXPECT_EQ(ws.post_mrc_snr_db, plain.post_mrc_snr_db);
  EXPECT_EQ(ws.evm_rms, plain.evm_rms);
  ASSERT_EQ(ws.h_fb.size(), plain.h_fb.size());
  for (std::size_t i = 0; i < plain.h_fb.size(); ++i)
    ASSERT_EQ(ws.h_fb[i], plain.h_fb[i]) << i;
  ASSERT_EQ(ws.symbol_estimates.size(), plain.symbol_estimates.size());
  for (std::size_t i = 0; i < plain.symbol_estimates.size(); ++i)
    ASSERT_EQ(ws.symbol_estimates[i], plain.symbol_estimates[i]) << i;

  // Warm same-capture re-decode performs no further tracked allocations.
  const std::uint64_t allocated = stats.bytes_allocated;
  decoder.decode(ex.x, ex.y, ex.nominal, 300, &scratch);
  EXPECT_EQ(stats.bytes_allocated, allocated);
  EXPECT_GT(stats.bytes_reused, 0u);
}

TEST(DecoderValidate, FirstViolationIsTypedAndCtorThrows) {
  EXPECT_EQ(decoder_config{}.validate(), config_error::none);
  {
    decoder_config cfg;
    cfg.fb_taps = 0;
    EXPECT_EQ(cfg.validate(), config_error::zero_channel_taps);
  }
  {
    decoder_config cfg;
    cfg.sync_threshold = 1.5;
    EXPECT_EQ(cfg.validate(), config_error::bad_sync_threshold);
    cfg.sync_threshold = 0.0;
    EXPECT_EQ(cfg.validate(), config_error::bad_sync_threshold);
  }
  {
    decoder_config cfg;
    cfg.timing_search = -1;
    EXPECT_EQ(cfg.validate(), config_error::bad_timing_search);
  }
  {
    decoder_config cfg;
    cfg.ridge = -1.0;
    EXPECT_EQ(cfg.validate(), config_error::bad_ridge);
  }
  {
    decoder_config cfg;
    cfg.retry_search_scale = 0.5;
    EXPECT_EQ(cfg.validate(), config_error::bad_retry_scale);
  }
  {
    decoder_config cfg;
    cfg.phase_tracking_gain = 1.5;
    EXPECT_EQ(cfg.validate(), config_error::bad_tracking_gain);
  }
  EXPECT_STREQ(to_string(config_error::bad_retry_scale), "bad_retry_scale");

  decoder_config bad;
  bad.fb_taps = 0;
  try {
    const backfi_decoder decoder(default_tag(), bad);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("backfi_decoder"), std::string::npos) << what;
    EXPECT_NE(what.find("zero_channel_taps"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace backfi::reader
