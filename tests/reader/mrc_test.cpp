#include "reader/mrc.h"

#include <gtest/gtest.h>
#include <cstdint>
#include <vector>

#include "dsp/math_util.h"
#include "dsp/rng.h"

namespace backfi::reader {
namespace {

/// Synthetic observation: y = yhat * e^{j theta} + noise.
struct observation {
  cvec y;
  cvec yhat;
};

observation make_observation(double theta, double noise_sigma, std::size_t n,
                             std::uint64_t seed) {
  dsp::rng gen(seed);
  observation obs;
  obs.yhat.resize(n);
  obs.y.resize(n);
  const cplx rot = dsp::phasor(theta);
  for (std::size_t i = 0; i < n; ++i) {
    // Wildly varying magnitudes, like an OFDM excitation through a channel.
    obs.yhat[i] = gen.complex_gaussian();
    obs.y[i] = obs.yhat[i] * rot + noise_sigma * gen.complex_gaussian();
  }
  return obs;
}

TEST(MrcTest, RecoversPhaseNoiseless) {
  for (double theta : {0.0, 0.7, -2.1, 3.0}) {
    const auto obs = make_observation(theta, 0.0, 64, 1);
    const cplx m = mrc_estimate(obs.y, obs.yhat, 0, obs.y.size());
    EXPECT_NEAR(dsp::wrap_phase(std::arg(m) - theta), 0.0, 1e-12) << theta;
    EXPECT_NEAR(std::abs(m), 1.0, 1e-12);
  }
}

TEST(MrcTest, EmptyOrSilentWindowGivesZero) {
  const cvec zeros(10, cplx{0.0, 0.0});
  EXPECT_EQ(mrc_estimate(zeros, zeros, 0, 10), cplx(0.0, 0.0));
  const auto obs = make_observation(1.0, 0.0, 10, 2);
  EXPECT_EQ(mrc_estimate(obs.y, obs.yhat, 5, 5), cplx(0.0, 0.0));
}

TEST(MrcTest, VarianceShrinksWithWindowLength) {
  // Average phase-estimate error over many draws for two window sizes.
  double err_short = 0.0, err_long = 0.0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    const auto s = make_observation(0.5, 1.0, 8, 100 + t);
    const auto l = make_observation(0.5, 1.0, 128, 500 + t);
    err_short += std::norm(mrc_estimate(s.y, s.yhat, 0, 8) - dsp::phasor(0.5));
    err_long += std::norm(mrc_estimate(l.y, l.yhat, 0, 128) - dsp::phasor(0.5));
  }
  EXPECT_LT(err_long, err_short / 4.0);
}

TEST(MrcTest, BeatsNaiveDivision) {
  // The paper's point: dividing y by yhat amplifies noise on weak samples.
  double err_mrc = 0.0, err_naive = 0.0;
  const int trials = 300;
  for (int t = 0; t < trials; ++t) {
    const auto obs = make_observation(1.2, 0.5, 32, 1000 + t);
    err_mrc += std::norm(mrc_estimate(obs.y, obs.yhat, 0, 32) - dsp::phasor(1.2));
    err_naive += std::norm(naive_division_estimate(obs.y, obs.yhat, 0, 32) -
                           dsp::phasor(1.2));
  }
  EXPECT_LT(err_mrc, err_naive / 2.0);
}

TEST(MrcTest, SymbolEstimatesHonourGuardAndBoundaries) {
  // Two symbols with different phases; the guard must exclude the samples
  // we deliberately corrupt at each symbol head.
  dsp::rng gen(3);
  const std::size_t sps = 20, guard = 4;
  cvec yhat(2 * sps), y(2 * sps);
  for (std::size_t i = 0; i < yhat.size(); ++i) yhat[i] = gen.complex_gaussian();
  for (std::size_t i = 0; i < sps; ++i) y[i] = yhat[i] * dsp::phasor(0.3);
  for (std::size_t i = sps; i < 2 * sps; ++i) y[i] = yhat[i] * dsp::phasor(-1.1);
  // Corrupt the first `guard` samples of each symbol (channel transition).
  for (std::size_t s = 0; s < 2; ++s)
    for (std::size_t i = 0; i < guard; ++i) y[s * sps + i] = {10.0, -10.0};

  const cvec m = mrc_symbol_estimates(y, yhat, 0, sps, 2, guard);
  ASSERT_EQ(m.size(), 2u);
  EXPECT_NEAR(dsp::wrap_phase(std::arg(m[0]) - 0.3), 0.0, 1e-9);
  EXPECT_NEAR(dsp::wrap_phase(std::arg(m[1]) + 1.1), 0.0, 1e-9);
}

TEST(MrcTest, TruncatedFinalSymbolLeftZero) {
  const auto obs = make_observation(0.2, 0.0, 30, 4);
  // Ask for 3 symbols of 16 samples from a 30-sample buffer: only 1 fits.
  const cvec m = mrc_symbol_estimates(obs.y, obs.yhat, 0, 16, 3, 2);
  ASSERT_EQ(m.size(), 3u);
  EXPECT_GT(std::abs(m[0]), 0.5);
  EXPECT_EQ(m[1], cplx(0.0, 0.0));
  EXPECT_EQ(m[2], cplx(0.0, 0.0));
}


TEST(MrcTest, PrecomputedProductsReproduceSymbolEstimates) {
  dsp::rng gen(55);
  const std::size_t n = 400;
  cvec y(n), yhat(n);
  for (auto& v : y) v = gen.complex_gaussian();
  for (auto& v : yhat) v = gen.complex_gaussian();
  const std::size_t first = 37, sps = 20, n_sym = 15, guard = 4;
  const cvec direct = mrc_symbol_estimates(y, yhat, first, sps, n_sym, guard);

  const std::size_t begin = 30, end = n;
  cvec products;
  std::vector<double> weights;
  dsp::workspace_stats stats;
  mrc_precompute(y, yhat, begin, end, products, weights, &stats);
  ASSERT_EQ(products.size(), end - begin);
  ASSERT_EQ(weights.size(), end - begin);
  cvec out(n_sym);
  mrc_symbol_estimates_from_products(products, weights, begin, n, first, sps,
                                     n_sym, guard, out);
  for (std::size_t s = 0; s < n_sym; ++s) ASSERT_EQ(out[s], direct[s]) << s;

  // Warm re-run of the precompute serves from existing capacity.
  const std::uint64_t allocated = stats.bytes_allocated;
  mrc_precompute(y, yhat, begin, end, products, weights, &stats);
  EXPECT_EQ(stats.bytes_allocated, allocated);
  EXPECT_GT(stats.bytes_reused, 0u);
}

TEST(MrcTest, ProductsPathReproducesEndOfCaptureTruncation) {
  dsp::rng gen(56);
  const std::size_t n = 100;
  cvec y(n), yhat(n);
  for (auto& v : y) v = gen.complex_gaussian();
  for (auto& v : yhat) v = gen.complex_gaussian();
  // The final symbols extend past the capture; from_products must reproduce
  // the original zero-fill of truncated symbols via `capture_size`.
  const std::size_t first = 10, sps = 16, n_sym = 7, guard = 3;
  const cvec direct = mrc_symbol_estimates(y, yhat, first, sps, n_sym, guard);

  cvec products;
  std::vector<double> weights;
  mrc_precompute(y, yhat, 0, n, products, weights);
  cvec out(n_sym);
  mrc_symbol_estimates_from_products(products, weights, 0, n, first, sps,
                                     n_sym, guard, out);
  for (std::size_t s = 0; s < n_sym; ++s) ASSERT_EQ(out[s], direct[s]) << s;
}

}  // namespace
}  // namespace backfi::reader
