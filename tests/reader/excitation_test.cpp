#include "reader/excitation.h"

#include <gtest/gtest.h>
#include <cstdint>

#include "dsp/vec_ops.h"
#include "phy/prbs.h"

namespace backfi::reader {
namespace {

TEST(ExcitationTest, LayoutMatchesConfig) {
  const excitation_config cfg{.tag_id = 3, .wake_bits = 16, .ppdu_bytes = 500};
  const excitation ex = build_excitation(cfg);
  EXPECT_EQ(ex.wake_end, 16u * 20u);
  EXPECT_EQ(ex.ppdu_start, ex.wake_end);
  EXPECT_EQ(ex.samples.size(), excitation_length(cfg));
  EXPECT_EQ(ex.wake_preamble, phy::wake_preamble(3, 16));
}

TEST(ExcitationTest, WakeSectionIsOokOfPreamble) {
  const excitation ex = build_excitation({.tag_id = 5});
  for (std::size_t b = 0; b < ex.wake_preamble.size(); ++b) {
    for (std::size_t i = 0; i < 20; ++i) {
      const cplx v = ex.samples[b * 20 + i];
      if (ex.wake_preamble[b]) {
        EXPECT_NEAR(std::abs(v), 1.0, 1e-12);
      } else {
        EXPECT_NEAR(std::abs(v), 0.0, 1e-12);
      }
    }
  }
}

TEST(ExcitationTest, PpduFollowsWakeSection) {
  const excitation ex = build_excitation({.tag_id = 1, .ppdu_bytes = 100});
  ASSERT_EQ(ex.samples.size(), ex.ppdu_start + ex.ppdu.samples.size());
  for (std::size_t i = 0; i < 100; ++i)
    EXPECT_EQ(ex.samples[ex.ppdu_start + i], ex.ppdu.samples[i]);
}

TEST(ExcitationTest, MultiPpduBurstConcatenates) {
  excitation_config cfg{.ppdu_bytes = 200};
  cfg.n_ppdus = 3;
  const excitation ex = build_excitation(cfg);
  EXPECT_EQ(ex.samples.size(),
            16u * 20u + 3u * wifi::ppdu_length_samples(200, cfg.rate));
  // The PPDUs carry different payloads (different seeds).
  const std::size_t ppdu_len = wifi::ppdu_length_samples(200, cfg.rate);
  double diff = 0.0;
  for (std::size_t i = 500; i < ppdu_len; ++i)
    diff += std::abs(ex.samples[ex.ppdu_start + i] -
                     ex.samples[ex.ppdu_start + ppdu_len + i]);
  EXPECT_GT(diff, 1.0);
}

TEST(ExcitationTest, DeterministicForSameConfig) {
  const excitation a = build_excitation({.tag_id = 9, .payload_seed = 7});
  const excitation b = build_excitation({.tag_id = 9, .payload_seed = 7});
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i)
    ASSERT_EQ(a.samples[i], b.samples[i]);
}


TEST(ExcitationTest, BuildIntoMatchesBuildAndReusesBuffers) {
  excitation_config cfg;
  cfg.tag_id = 3;
  cfg.ppdu_bytes = 600;
  cfg.n_ppdus = 2;
  cfg.payload_seed = 9;
  const excitation a = build_excitation(cfg);

  excitation out;
  dsp::workspace_stats stats;
  build_excitation_into(cfg, out, &stats);
  EXPECT_EQ(out.wake_end, a.wake_end);
  EXPECT_EQ(out.ppdu_start, a.ppdu_start);
  EXPECT_EQ(out.wake_preamble, a.wake_preamble);
  ASSERT_EQ(out.samples.size(), a.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i)
    ASSERT_EQ(out.samples[i], a.samples[i]) << i;
  ASSERT_EQ(out.ppdu.samples.size(), a.ppdu.samples.size());
  EXPECT_EQ(out.ppdu.data_start, a.ppdu.data_start);
  for (std::size_t i = 0; i < a.ppdu.samples.size(); ++i)
    ASSERT_EQ(out.ppdu.samples[i], a.ppdu.samples[i]) << i;

  // Same config into the warm buffers: no further tracked allocations.
  const std::uint64_t allocated = stats.bytes_allocated;
  build_excitation_into(cfg, out, &stats);
  EXPECT_EQ(stats.bytes_allocated, allocated);
  for (std::size_t i = 0; i < a.samples.size(); ++i)
    ASSERT_EQ(out.samples[i], a.samples[i]) << i;
}

TEST(ExcitationTest, PrefixCacheRespondsToEveryKeyField) {
  // The cached wake/preamble prefix is keyed on (tag_id, wake_bits, rate,
  // ppdu_bytes): vary each field and check the waveform changes where it
  // must, while a repeated config stays identical (a stale cache hit on a
  // mutated key would reproduce the previous waveform).
  excitation_config base;
  base.ppdu_bytes = 400;
  const excitation ref = build_excitation(base);
  const excitation same = build_excitation(base);
  ASSERT_EQ(ref.samples.size(), same.samples.size());
  for (std::size_t i = 0; i < ref.samples.size(); ++i)
    ASSERT_EQ(ref.samples[i], same.samples[i]) << i;

  excitation_config other_tag = base;
  other_tag.tag_id = base.tag_id + 5;
  const excitation tag_ex = build_excitation(other_tag);
  EXPECT_NE(tag_ex.wake_preamble, ref.wake_preamble);

  excitation_config other_wake = base;
  other_wake.wake_bits = base.wake_bits + 4;
  EXPECT_NE(build_excitation(other_wake).wake_end, ref.wake_end);

  excitation_config other_bytes = base;
  other_bytes.ppdu_bytes = base.ppdu_bytes + 100;
  EXPECT_NE(build_excitation(other_bytes).samples.size(), ref.samples.size());

  excitation_config other_rate = base;
  other_rate.rate = wifi::wifi_rate::mbps12;
  EXPECT_NE(build_excitation(other_rate).samples.size(), ref.samples.size());

  // And the original key still serves the original waveform.
  const excitation again = build_excitation(base);
  ASSERT_EQ(again.samples.size(), ref.samples.size());
  for (std::size_t i = 0; i < ref.samples.size(); ++i)
    ASSERT_EQ(again.samples[i], ref.samples[i]) << i;
}

TEST(ExcitationTest, FullSynthesisCacheHitIsBitwiseIdentical) {
  // A key this test alone uses: the first build is a guaranteed miss, the
  // second a guaranteed hit, and the hit must reproduce the miss bitwise —
  // samples, layout, and every field of the embedded PPDU.
  excitation_config cfg;
  cfg.tag_id = 11;
  cfg.ppdu_bytes = 321;
  cfg.n_ppdus = 2;
  cfg.payload_seed = 0xFEED5EEDu;

  const auto before = excitation_cache_stats();
  const excitation miss = build_excitation(cfg);
  const excitation hit = build_excitation(cfg);
  const auto after = excitation_cache_stats();

  ASSERT_EQ(hit.samples.size(), miss.samples.size());
  for (std::size_t i = 0; i < miss.samples.size(); ++i)
    ASSERT_EQ(hit.samples[i], miss.samples[i]) << i;
  EXPECT_EQ(hit.wake_end, miss.wake_end);
  EXPECT_EQ(hit.ppdu_start, miss.ppdu_start);
  EXPECT_EQ(hit.wake_preamble, miss.wake_preamble);
  EXPECT_EQ(hit.ppdu.rate, miss.ppdu.rate);
  EXPECT_EQ(hit.ppdu.psdu_bytes, miss.ppdu.psdu_bytes);
  EXPECT_EQ(hit.ppdu.n_data_symbols, miss.ppdu.n_data_symbols);
  EXPECT_EQ(hit.ppdu.data_start, miss.ppdu.data_start);
  EXPECT_EQ(hit.ppdu.payload, miss.ppdu.payload);
  ASSERT_EQ(hit.ppdu.samples.size(), miss.ppdu.samples.size());
  for (std::size_t i = 0; i < miss.ppdu.samples.size(); ++i)
    ASSERT_EQ(hit.ppdu.samples[i], miss.ppdu.samples[i]) << i;

  if (after.misses > before.misses) {
    EXPECT_GE(after.hits, before.hits + 1);
  } else {
    // BACKFI_EXCITATION_CACHE_MB=0: both builds synthesized fresh, which
    // the bitwise comparison above still pins.
    EXPECT_EQ(after.entries, 0u);
  }
}

}  // namespace
}  // namespace backfi::reader
