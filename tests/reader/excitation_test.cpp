#include "reader/excitation.h"

#include <gtest/gtest.h>

#include "dsp/vec_ops.h"
#include "phy/prbs.h"

namespace backfi::reader {
namespace {

TEST(ExcitationTest, LayoutMatchesConfig) {
  const excitation_config cfg{.tag_id = 3, .wake_bits = 16, .ppdu_bytes = 500};
  const excitation ex = build_excitation(cfg);
  EXPECT_EQ(ex.wake_end, 16u * 20u);
  EXPECT_EQ(ex.ppdu_start, ex.wake_end);
  EXPECT_EQ(ex.samples.size(), excitation_length(cfg));
  EXPECT_EQ(ex.wake_preamble, phy::wake_preamble(3, 16));
}

TEST(ExcitationTest, WakeSectionIsOokOfPreamble) {
  const excitation ex = build_excitation({.tag_id = 5});
  for (std::size_t b = 0; b < ex.wake_preamble.size(); ++b) {
    for (std::size_t i = 0; i < 20; ++i) {
      const cplx v = ex.samples[b * 20 + i];
      if (ex.wake_preamble[b]) {
        EXPECT_NEAR(std::abs(v), 1.0, 1e-12);
      } else {
        EXPECT_NEAR(std::abs(v), 0.0, 1e-12);
      }
    }
  }
}

TEST(ExcitationTest, PpduFollowsWakeSection) {
  const excitation ex = build_excitation({.tag_id = 1, .ppdu_bytes = 100});
  ASSERT_EQ(ex.samples.size(), ex.ppdu_start + ex.ppdu.samples.size());
  for (std::size_t i = 0; i < 100; ++i)
    EXPECT_EQ(ex.samples[ex.ppdu_start + i], ex.ppdu.samples[i]);
}

TEST(ExcitationTest, MultiPpduBurstConcatenates) {
  excitation_config cfg{.ppdu_bytes = 200};
  cfg.n_ppdus = 3;
  const excitation ex = build_excitation(cfg);
  EXPECT_EQ(ex.samples.size(),
            16u * 20u + 3u * wifi::ppdu_length_samples(200, cfg.rate));
  // The PPDUs carry different payloads (different seeds).
  const std::size_t ppdu_len = wifi::ppdu_length_samples(200, cfg.rate);
  double diff = 0.0;
  for (std::size_t i = 500; i < ppdu_len; ++i)
    diff += std::abs(ex.samples[ex.ppdu_start + i] -
                     ex.samples[ex.ppdu_start + ppdu_len + i]);
  EXPECT_GT(diff, 1.0);
}

TEST(ExcitationTest, DeterministicForSameConfig) {
  const excitation a = build_excitation({.tag_id = 9, .payload_seed = 7});
  const excitation b = build_excitation({.tag_id = 9, .payload_seed = 7});
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i)
    ASSERT_EQ(a.samples[i], b.samples[i]);
}

}  // namespace
}  // namespace backfi::reader
