#include "reader/block_collector.h"

#include <gtest/gtest.h>

#include "dsp/rng.h"
#include "tag/packet_coder.h"

namespace backfi::reader {
namespace {

phy::erasure_spec make_spec(phy::erasure_scheme scheme) {
  phy::erasure_spec spec;
  spec.scheme = scheme;
  spec.block_symbols = 6;
  spec.symbol_bytes = 8;
  spec.rs_repair_symbols = 3;
  spec.fountain_overhead = 0.5;
  spec.seed = 11;
  return spec;
}

std::vector<std::uint8_t> block_bytes(const phy::erasure_spec& spec,
                                      std::uint64_t seed) {
  dsp::rng gen(seed);
  std::vector<std::uint8_t> data(spec.block_symbols * spec.symbol_bytes);
  for (auto& b : data) b = static_cast<std::uint8_t>(gen.uniform_int(256));
  return data;
}

TEST(BlockCollectorTest, EndToEndRsSurvivesErasures) {
  const phy::erasure_spec spec = make_spec(phy::erasure_scheme::reed_solomon);
  tag::packet_coder coder(spec);
  block_collector collector(spec);
  const auto data = block_bytes(spec, 1);
  coder.push_block(data);
  // Drop every third packet of the coded stream; k of 9 still get through.
  std::size_t sent = 0;
  block_report last;
  while (coder.has_packet()) {
    const phy::coded_packet p = coder.next_packet();
    if (sent++ % 3 == 2) continue;  // erased
    last = collector.accept(p.bits);
    if (last.status == phy::block_status::decoded) break;
  }
  ASSERT_EQ(last.status, phy::block_status::decoded);
  EXPECT_EQ(last.data, data);
  EXPECT_EQ(collector.block_data(0), data);
  EXPECT_EQ(collector.stats().blocks_decoded, 1u);
}

TEST(BlockCollectorTest, EndToEndFountainSurvivesBurstErasure) {
  const phy::erasure_spec spec = make_spec(phy::erasure_scheme::fountain);
  tag::packet_coder coder(spec);
  block_collector collector(spec);
  const auto data = block_bytes(spec, 2);
  coder.push_block(data);
  // A burst kills the first 4 packets outright; repair symbols granted on
  // demand keep the stream going until the eliminator completes.
  std::size_t sent = 0;
  while (collector.status(0) != phy::block_status::decoded) {
    if (!coder.has_packet()) {
      ASSERT_GT(coder.request_repair(0, 4), 0u);
    }
    const phy::coded_packet p = coder.next_packet();
    ++sent;
    if (sent <= 4) continue;  // burst erasure
    collector.accept(p.bits);
    ASSERT_LT(sent, 200u);
  }
  EXPECT_EQ(collector.block_data(0), data);
}

TEST(BlockCollectorTest, UncodedNeedsEverySourceSymbol) {
  const phy::erasure_spec spec = make_spec(phy::erasure_scheme::none);
  tag::packet_coder coder(spec);
  block_collector collector(spec);
  const auto data = block_bytes(spec, 3);
  coder.push_block(data);
  // Deliver and ack all but the last symbol.
  for (std::size_t i = 0; i + 1 < spec.block_symbols; ++i) {
    const phy::coded_packet p = coder.next_packet();
    EXPECT_EQ(collector.accept(p.bits).status, phy::block_status::pending);
    coder.ack_symbol(p.block, p.esi);
  }
  const phy::coded_packet p = coder.next_packet();
  const block_report report = collector.accept(p.bits);
  EXPECT_EQ(report.status, phy::block_status::decoded);
  EXPECT_EQ(report.data, data);
}

TEST(BlockCollectorTest, DuplicatesAndLateSymbolsAreCounted) {
  const phy::erasure_spec spec = make_spec(phy::erasure_scheme::reed_solomon);
  tag::packet_coder coder(spec);
  block_collector collector(spec);
  coder.push_block(block_bytes(spec, 4));
  const phy::coded_packet p = coder.next_packet();
  collector.accept(p.bits);
  collector.accept(p.bits);  // duplicate ESI
  EXPECT_EQ(collector.stats().duplicate_symbols, 1u);
  EXPECT_EQ(collector.stats().packets_accepted, 2u);
}

TEST(BlockCollectorTest, MalformedPayloadIsRejected) {
  const phy::erasure_spec spec = make_spec(phy::erasure_scheme::fountain);
  block_collector collector(spec);
  const phy::bitvec junk(spec.packet_payload_bits() - 4, 1);
  const block_report report = collector.accept(junk);
  EXPECT_EQ(report.block, 0xffffffffu);
  EXPECT_EQ(collector.stats().packets_rejected, 1u);
}

TEST(BlockCollectorTest, AbandonMarksUnrecoverableButNeverDowngrades) {
  const phy::erasure_spec spec = make_spec(phy::erasure_scheme::reed_solomon);
  tag::packet_coder coder(spec);
  block_collector collector(spec);
  const auto data = block_bytes(spec, 5);
  coder.push_block(data);
  collector.abandon(0);
  EXPECT_EQ(collector.status(0), phy::block_status::unrecoverable);
  EXPECT_EQ(collector.stats().blocks_abandoned, 1u);
  // A decoded block cannot be abandoned after the fact.
  coder.push_block(data);
  while (coder.has_packet()) {
    const phy::coded_packet p = coder.next_packet();
    if (p.block == 1) collector.accept(p.bits);
  }
  ASSERT_EQ(collector.status(1), phy::block_status::decoded);
  collector.abandon(1);
  EXPECT_EQ(collector.status(1), phy::block_status::decoded);
}

}  // namespace
}  // namespace backfi::reader
