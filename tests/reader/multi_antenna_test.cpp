#include "reader/multi_antenna.h"

#include <gtest/gtest.h>

#include "channel/awgn.h"
#include "dsp/fir.h"
#include "dsp/math_util.h"
#include "dsp/vec_ops.h"
#include "reader/excitation.h"

namespace backfi::reader {
namespace {

tag::tag_config test_tag() {
  tag::tag_config cfg;
  cfg.id = 4;
  cfg.rate = {tag::tag_modulation::qpsk, phy::code_rate::half, 1e6};
  return cfg;
}

/// Build a synthetic multi-antenna exchange: shared forward channel,
/// independent backward channels and noise per antenna.
struct ma_exchange {
  cvec x;
  std::vector<antenna_observation> antennas;
  phy::bitvec payload;
  std::size_t nominal;
};

ma_exchange make_exchange(std::size_t n_antennas, double noise_db,
                          std::uint64_t seed) {
  dsp::rng gen(seed);
  ma_exchange ex;
  excitation_config ex_cfg;
  ex_cfg.tag_id = test_tag().id;
  ex_cfg.ppdu_bytes = 4000;
  ex_cfg.payload_seed = seed;
  const excitation e = build_excitation(ex_cfg);
  ex.x = e.samples;
  ex.nominal = e.wake_end;

  const cvec h_f = {cplx{5e-3, 1e-3}, cplx{1e-3, -5e-4}};
  ex.payload = gen.random_bits(300);
  const tag::tag_device device(test_tag());
  const auto tag_tx = device.backscatter(ex.payload, ex.x.size(), ex.nominal);
  const cvec incident = dsp::convolve_same(ex.x, h_f);
  const cvec reflected = dsp::hadamard(incident, tag_tx.reflection);

  for (std::size_t a = 0; a < n_antennas; ++a) {
    cvec h_b(2);
    for (auto& t : h_b) t = 4e-3 * gen.complex_gaussian();
    antenna_observation obs;
    obs.cleaned = dsp::convolve_same(reflected, h_b);
    channel::add_awgn(obs.cleaned, dsp::from_db(noise_db), gen);
    ex.antennas.push_back(std::move(obs));
  }
  return ex;
}

TEST(MultiAntennaTest, SingleAntennaMatchesPlainDecoder) {
  const auto ex = make_exchange(1, -110.0, 1);
  const multi_antenna_decoder multi(test_tag());
  const auto r = multi.decode(ex.x, ex.antennas, ex.nominal, 300);
  ASSERT_TRUE(r.combined.crc_ok);
  EXPECT_EQ(r.combined.payload, ex.payload);
  ASSERT_EQ(r.weights.size(), 1u);
  EXPECT_NEAR(r.weights[0], 1.0, 1e-12);
}

TEST(MultiAntennaTest, CombiningImprovesSnr) {
  double snr1 = 0.0, snr4 = 0.0;
  const int trials = 5;
  for (int t = 0; t < trials; ++t) {
    const auto one = make_exchange(1, -100.0, 10 + t);
    const auto four = make_exchange(4, -100.0, 10 + t);
    const multi_antenna_decoder multi(test_tag());
    const auto r1 = multi.decode(one.x, one.antennas, one.nominal, 300);
    const auto r4 = multi.decode(four.x, four.antennas, four.nominal, 300);
    snr1 += r1.combined.post_mrc_snr_db / trials;
    snr4 += r4.combined.post_mrc_snr_db / trials;
  }
  // Four-branch spatial MRC: ~6 dB array gain (allow fading spread).
  EXPECT_GT(snr4 - snr1, 3.0);
}

TEST(MultiAntennaTest, CombinedDecodesWhenSingleAntennasFail) {
  // Noise high enough that individual antennas are unreliable but the
  // combination decodes.
  int combined_ok = 0, single_ok = 0, trials = 6;
  for (int t = 0; t < trials; ++t) {
    const auto ex = make_exchange(4, -87.0, 40 + t);
    const multi_antenna_decoder multi(test_tag());
    const auto r = multi.decode(ex.x, ex.antennas, ex.nominal, 300);
    if (r.combined.crc_ok && r.combined.payload == ex.payload) ++combined_ok;
    for (const auto& pa : r.per_antenna)
      if (pa.crc_ok && pa.payload == ex.payload) {
        ++single_ok;
        break;  // count trials where at least one antenna succeeded
      }
  }
  EXPECT_GE(combined_ok, single_ok);
  EXPECT_GT(combined_ok, trials / 2);
}

TEST(MultiAntennaTest, WeightsFavourStrongerAntenna) {
  // Degrade antenna 1 with extra noise: its weight must be smaller.
  auto ex = make_exchange(2, -115.0, 77);
  dsp::rng extra(123);
  channel::add_awgn(ex.antennas[1].cleaned, dsp::from_db(-95.0), extra);
  const multi_antenna_decoder multi(test_tag());
  const auto r = multi.decode(ex.x, ex.antennas, ex.nominal, 300);
  ASSERT_TRUE(r.combined.crc_ok);
  EXPECT_GT(r.weights[0], r.weights[1]);
  EXPECT_NEAR(r.weights[0] + r.weights[1], 1.0, 1e-9);
}

TEST(MultiAntennaTest, AllAntennasDeadReportsFailure) {
  auto ex = make_exchange(2, -110.0, 99);
  dsp::rng gen(5);
  for (auto& a : ex.antennas)
    for (auto& v : a.cleaned) v = 1e-6 * gen.complex_gaussian();
  const multi_antenna_decoder multi(test_tag());
  const auto r = multi.decode(ex.x, ex.antennas, ex.nominal, 300);
  EXPECT_FALSE(r.combined.crc_ok);
}

}  // namespace
}  // namespace backfi::reader
