// Unit semantics of the observability primitives: counters, gauges,
// histograms, and the name-keyed registry with its find-or-create and
// merge behaviour.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace backfi::obs {
namespace {

TEST(Histogram, AccumulatesMoments) {
  histogram h;
  h.lo = 0.0;
  h.hi = 10.0;
  for (const double v : {1.0, 2.0, 3.0, 4.0}) h.observe(v);
  EXPECT_EQ(h.count, 4u);
  EXPECT_DOUBLE_EQ(h.sum, 10.0);
  EXPECT_DOUBLE_EQ(h.sum_sq, 1.0 + 4.0 + 9.0 + 16.0);
  EXPECT_DOUBLE_EQ(h.min_value, 1.0);
  EXPECT_DOUBLE_EQ(h.max_value, 4.0);
  EXPECT_DOUBLE_EQ(h.mean(), 2.5);
}

TEST(Histogram, OutOfRangeValuesClampToEdgeBins) {
  histogram h;
  h.lo = 0.0;
  h.hi = 1.0;
  h.observe(-5.0);
  h.observe(5.0);
  EXPECT_EQ(h.bins.front(), 1u);
  EXPECT_EQ(h.bins.back(), 1u);
  EXPECT_EQ(h.count, 2u);
}

TEST(Histogram, MergeAddsBinwise) {
  histogram a, b;
  a.lo = b.lo = 0.0;
  a.hi = b.hi = 1.0;
  a.observe(0.25);
  b.observe(0.25);
  b.observe(0.75);
  a.merge(b);
  EXPECT_EQ(a.count, 3u);
  EXPECT_DOUBLE_EQ(a.sum, 1.25);
  EXPECT_DOUBLE_EQ(a.min_value, 0.25);
  EXPECT_DOUBLE_EQ(a.max_value, 0.75);
}

TEST(Histogram, MergeRejectsMismatchedRanges) {
  histogram a, b;
  a.lo = 0.0;
  a.hi = 1.0;
  b.lo = 0.0;
  b.hi = 2.0;
  b.observe(0.5);
  EXPECT_THROW(a.merge(b), std::logic_error);
  // An empty source merges trivially regardless of range.
  const histogram empty{.lo = -1.0, .hi = 1.0};
  a.merge(empty);
  EXPECT_EQ(a.count, 0u);
}

TEST(MetricsRegistry, FindOrCreateReturnsStableEntries) {
  metrics_registry reg;
  counter& c = reg.get_counter("a");
  c.value = 3;
  EXPECT_EQ(reg.get_counter("a").value, 3u);
  reg.add("a", 2);
  EXPECT_EQ(c.value, 5u);
}

TEST(MetricsRegistry, GaugeSetTracksLastValue) {
  metrics_registry reg;
  reg.set("g", 1.5);
  reg.set("g", -2.0);
  EXPECT_TRUE(reg.get_gauge("g").set);
  EXPECT_DOUBLE_EQ(reg.get_gauge("g").value, -2.0);
}

TEST(MetricsRegistry, MergeCombinesAllKinds) {
  metrics_registry a, b;
  a.add("hits", 1);
  b.add("hits", 2);
  b.add("only_b", 7);
  b.set("gauge", 4.0);
  a.observe("h", 0.5, 0.0, 1.0);
  b.observe("h", 0.7, 0.0, 1.0);
  a.merge(b);
  EXPECT_EQ(a.get_counter("hits").value, 3u);
  EXPECT_EQ(a.get_counter("only_b").value, 7u);
  EXPECT_DOUBLE_EQ(a.get_gauge("gauge").value, 4.0);
  EXPECT_EQ(a.get_histogram("h", 0.0, 1.0).count, 2u);
}

TEST(MetricsRegistry, MergeIsAssociativeOnCounters) {
  metrics_registry a, b, c;
  a.add("x", 1);
  b.add("x", 2);
  c.add("x", 4);
  metrics_registry left;
  left.merge(a);
  left.merge(b);
  left.merge(c);
  metrics_registry bc;
  bc.merge(b);
  bc.merge(c);
  metrics_registry right;
  right.merge(a);
  right.merge(bc);
  EXPECT_EQ(left.get_counter("x").value, right.get_counter("x").value);
}

}  // namespace
}  // namespace backfi::obs
