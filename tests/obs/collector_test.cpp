// Collector semantics: catalogue pre-registration, typed probe fast path,
// null-safe helpers, timing spans, and the deterministic fork/join merge.
#include "obs/collector.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/export.h"

namespace backfi::obs {
namespace {

TEST(Collector, PreRegistersFullCatalogue) {
  const collector c;
  for (const probe_info& pi : probe_catalogue()) {
    if (pi.kind == probe_kind::counter) {
      const auto it = c.registry().counters().find(pi.name);
      ASSERT_NE(it, c.registry().counters().end()) << pi.name;
      EXPECT_EQ(it->second.value, 0u) << pi.name;
    } else {
      const auto it = c.registry().histograms().find(pi.name);
      ASSERT_NE(it, c.registry().histograms().end()) << pi.name;
      EXPECT_EQ(it->second.count, 0u) << pi.name;
    }
  }
}

TEST(Collector, CatalogueNamesAreUniqueAndGrouped) {
  for (const probe_info& pi : probe_catalogue()) {
    const std::string_view name = pi.name;
    const bool grouped = name.starts_with("sim.") || name.starts_with("fd.") ||
                         name.starts_with("reader.") ||
                         name.starts_with("tag.") || name.starts_with("mac.");
    EXPECT_TRUE(grouped) << name;
  }
  collector c;  // the constructor would double-register on a duplicate name
  std::size_t counters = 0, histograms = 0;
  for (const probe_info& pi : probe_catalogue())
    (pi.kind == probe_kind::counter ? counters : histograms) += 1;
  EXPECT_EQ(c.registry().counters().size(), counters);
  EXPECT_EQ(c.registry().histograms().size(), histograms);
}

TEST(Collector, TypedProbesHitTheNamedMetrics) {
  collector c;
  c.count(probe::trials, 3);
  c.observe(probe::post_mrc_snr_db, 12.5);
  EXPECT_EQ(c.registry().counters().at("sim.trials").value, 3u);
  EXPECT_EQ(c.registry().histograms().at("reader.post_mrc_snr_db").count, 1u);
}

TEST(Collector, NullSafeHelpersIgnoreNull) {
  count(nullptr, probe::trials);
  observe(nullptr, probe::evm_rms, 0.1);  // must not crash
  collector c;
  count(&c, probe::trials, 2);
  observe(&c, probe::evm_rms, 0.1);
  EXPECT_EQ(c.registry().counters().at("sim.trials").value, 2u);
  EXPECT_EQ(c.registry().histograms().at("reader.evm_rms").count, 1u);
}

TEST(TimingSpan, RecordsUnderTimingPrefixOnce) {
  collector c;
  {
    timing_span span(&c, "unit.test");
    span.stop();
    span.stop();  // idempotent
  }
  const auto it = c.registry().histograms().find("timing.unit.test");
  ASSERT_NE(it, c.registry().histograms().end());
  EXPECT_EQ(it->second.count, 1u);
  EXPECT_GE(it->second.sum, 0.0);
}

TEST(TimingSpan, NullCollectorIsInert) {
  timing_span span(nullptr, "unit.test");
  span.stop();  // no clock read, no crash
}

TEST(CollectorFork, JoinMergesInIndexOrder) {
  collector parent;
  collector_fork fork(&parent, 3);
  for (std::size_t i = 0; i < 3; ++i) {
    fork.child(i)->count(probe::trials, i + 1);
    fork.child(i)->observe(probe::evm_rms, 0.1 * static_cast<double>(i + 1));
  }
  fork.join();
  EXPECT_EQ(parent.registry().counters().at("sim.trials").value, 6u);
  EXPECT_EQ(parent.registry().histograms().at("reader.evm_rms").count, 3u);
}

TEST(CollectorFork, PartialJoinDropsSpeculativeChildren) {
  collector parent;
  collector_fork fork(&parent, 4);
  for (std::size_t i = 0; i < 4; ++i) fork.child(i)->count(probe::trials);
  fork.join(2);  // only the serially-consumed prefix
  EXPECT_EQ(parent.registry().counters().at("sim.trials").value, 2u);
}

TEST(CollectorFork, NullParentIsInert) {
  collector_fork fork(nullptr, 4);
  EXPECT_EQ(fork.child(0), nullptr);
  EXPECT_EQ(fork.child(3), nullptr);
  fork.join();  // no-op
}

TEST(CollectorFork, MergeOrderIsThreadScheduleIndependent) {
  // Two forks filled in different (simulated) completion orders must merge
  // to byte-identical exports: join() always walks children by index.
  const double values[] = {0.31, 0.77, 0.12, 0.55};
  collector a;
  {
    collector_fork fork(&a, 4);
    for (const std::size_t i : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                                std::size_t{3}})
      fork.child(i)->observe(probe::evm_rms, values[i]);
    fork.join();
  }
  collector b;
  {
    collector_fork fork(&b, 4);
    for (const std::size_t i : {std::size_t{3}, std::size_t{0}, std::size_t{2},
                                std::size_t{1}})
      fork.child(i)->observe(probe::evm_rms, values[i]);
    fork.join();
  }
  EXPECT_EQ(to_json(a.registry(), {.include_timings = false}),
            to_json(b.registry(), {.include_timings = false}));
}

}  // namespace
}  // namespace backfi::obs
