// JSON/CSV exporters: canonical output, exact round-trip through
// from_json, timing exclusion, and the zero-sample probe check.
#include "obs/export.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "obs/collector.h"

namespace backfi::obs {
namespace {

metrics_registry sample_registry() {
  metrics_registry reg;
  reg.add("sim.trials", 24);
  reg.add("reader.decode_failures", 3);
  reg.set("campaign.severity", 0.5);
  // Awkward doubles on purpose: the %.17g round-trip must preserve them.
  reg.observe("reader.post_mrc_snr_db", 17.299999999999997, -40.0, 60.0);
  reg.observe("reader.post_mrc_snr_db", -3.0000000000000004, -40.0, 60.0);
  reg.observe("timing.sim.trial", 1.25e-3, 0.0, 1.0);
  return reg;
}

TEST(JsonExport, RoundTripsByteIdentically) {
  const metrics_registry reg = sample_registry();
  const std::string json = to_json(reg);
  const auto parsed = from_json(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(to_json(*parsed), json);
}

TEST(JsonExport, ParsedValuesMatchExactly) {
  const metrics_registry reg = sample_registry();
  auto parsed = from_json(to_json(reg));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->get_counter("sim.trials").value, 24u);
  EXPECT_DOUBLE_EQ(parsed->get_gauge("campaign.severity").value, 0.5);
  const histogram& h =
      parsed->get_histogram("reader.post_mrc_snr_db", -40.0, 60.0);
  EXPECT_EQ(h.count, 2u);
  EXPECT_EQ(h.sum, 17.299999999999997 + -3.0000000000000004);
  EXPECT_EQ(h.min_value, -3.0000000000000004);
  EXPECT_EQ(h.max_value, 17.299999999999997);
}

TEST(JsonExport, IncludeTimingsFalseDropsTimingMetrics) {
  const metrics_registry reg = sample_registry();
  const std::string with = to_json(reg, {.include_timings = true});
  const std::string without = to_json(reg, {.include_timings = false});
  EXPECT_NE(with.find("timing.sim.trial"), std::string::npos);
  EXPECT_EQ(without.find("timing.sim.trial"), std::string::npos);
  // The non-timing content is unaffected.
  EXPECT_NE(without.find("sim.trials"), std::string::npos);
}

TEST(JsonExport, MalformedInputIsRejected) {
  EXPECT_FALSE(from_json("").has_value());
  EXPECT_FALSE(from_json("{").has_value());
  EXPECT_FALSE(from_json("[1, 2]").has_value());
  EXPECT_FALSE(from_json("{\"counters\": {\"x\": }}").has_value());
}

TEST(CsvExport, OneRowPerMetricWithHeader) {
  const metrics_registry reg = sample_registry();
  const std::string csv = to_csv(reg);
  EXPECT_EQ(csv.find("kind,name,count,value_or_sum,mean,min,max"), 0u);
  EXPECT_NE(csv.find("counter,sim.trials,"), std::string::npos);
  EXPECT_NE(csv.find("gauge,campaign.severity,"), std::string::npos);
  EXPECT_NE(csv.find("histogram,reader.post_mrc_snr_db,"), std::string::npos);
}

TEST(WriteFile, WritesAndFailsGracefully) {
  const std::string path = ::testing::TempDir() + "obs_export_test.json";
  ASSERT_TRUE(write_file(path, "{}\n"));
  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[8] = {};
  const std::size_t n = std::fread(buf, 1, sizeof buf, f);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(std::string(buf, n), "{}\n");
  EXPECT_FALSE(write_file("/nonexistent-dir/x.json", "x"));
}

TEST(ZeroSampleProbes, FlagsSilentRequiredProbes) {
  collector c;  // full catalogue pre-registered at zero
  c.count(probe::trials, 5);
  c.observe(probe::post_mrc_snr_db, 12.0);
  const probe required[] = {probe::trials, probe::post_mrc_snr_db,
                            probe::decode_failures, probe::evm_rms};
  const auto silent = zero_sample_probes(c.registry(), required);
  ASSERT_EQ(silent.size(), 2u);
  EXPECT_EQ(silent[0], "reader.decode_failures");
  EXPECT_EQ(silent[1], "reader.evm_rms");
}

TEST(ZeroSampleProbes, EmptyWhenAllFired) {
  collector c;
  c.count(probe::trials);
  const probe required[] = {probe::trials};
  EXPECT_TRUE(zero_sample_probes(c.registry(), required).empty());
}

TEST(ZeroSampleMetrics, ChecksNamedCountersHistogramsAndGauges) {
  // The ad-hoc named metrics (timing spans, sim.scheduler.* counters,
  // runtime gauges) have no probe-catalogue entry; the named check covers
  // them across all three metric kinds.
  collector c;
  c.add_counter("sim.scheduler.sweeps", 1);
  c.record_timing("reader.excitation", 1e-4);
  c.set_gauge("runtime.scheduler.threads", 4.0);
  const std::string required[] = {
      "sim.scheduler.sweeps",       // counter, sampled
      "timing.reader.excitation",   // histogram, sampled
      "runtime.scheduler.threads",  // gauge, sampled
      "timing.tag.modulate",        // never recorded
      "sim.scheduler.tasks",        // never recorded
  };
  const auto silent = zero_sample_metrics(c.registry(), required);
  ASSERT_EQ(silent.size(), 2u);
  EXPECT_EQ(silent[0], "timing.tag.modulate");
  EXPECT_EQ(silent[1], "sim.scheduler.tasks");
}

TEST(ZeroSampleMetrics, ZeroValueCounterCountsAsSilent) {
  collector c;
  c.add_counter("sim.adaptive.early_stops", 0);
  const std::string required[] = {"sim.adaptive.early_stops"};
  const auto silent = zero_sample_metrics(c.registry(), required);
  ASSERT_EQ(silent.size(), 1u);
}

}  // namespace
}  // namespace backfi::obs
