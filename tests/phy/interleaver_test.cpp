#include "phy/interleaver.h"

#include <gtest/gtest.h>

#include <set>

#include "dsp/rng.h"

namespace backfi::phy {
namespace {

struct interleaver_params {
  std::size_t n_cbps;
  std::size_t n_bpsc;
};

class InterleaverParamTest : public ::testing::TestWithParam<interleaver_params> {};

TEST_P(InterleaverParamTest, MappingIsBijective) {
  const auto [n_cbps, n_bpsc] = GetParam();
  const interleaver il(n_cbps, n_bpsc);
  std::set<std::size_t> targets;
  for (std::size_t k = 0; k < n_cbps; ++k) {
    const std::size_t j = il.map_index(k);
    EXPECT_LT(j, n_cbps);
    targets.insert(j);
  }
  EXPECT_EQ(targets.size(), n_cbps);
}

TEST_P(InterleaverParamTest, RoundTripIdentity) {
  const auto [n_cbps, n_bpsc] = GetParam();
  const interleaver il(n_cbps, n_bpsc);
  dsp::rng gen(n_cbps);
  const bitvec block = gen.random_bits(n_cbps);
  EXPECT_EQ(il.deinterleave(il.interleave(block)), block);
}

TEST_P(InterleaverParamTest, SoftDeinterleaveMatchesHard) {
  const auto [n_cbps, n_bpsc] = GetParam();
  const interleaver il(n_cbps, n_bpsc);
  dsp::rng gen(n_cbps + 1);
  const bitvec block = gen.random_bits(n_cbps);
  const bitvec interleaved = il.interleave(block);
  std::vector<double> soft(interleaved.size());
  for (std::size_t i = 0; i < soft.size(); ++i)
    soft[i] = interleaved[i] ? -1.0 : 1.0;
  const auto restored = il.deinterleave_soft(soft);
  for (std::size_t i = 0; i < block.size(); ++i)
    EXPECT_EQ(restored[i] < 0.0, block[i] != 0);
}

// All (N_CBPS, N_BPSC) pairs used by 802.11a/g 20 MHz rates.
INSTANTIATE_TEST_SUITE_P(AllWifiRates, InterleaverParamTest,
                         ::testing::Values(interleaver_params{48, 1},
                                           interleaver_params{96, 2},
                                           interleaver_params{192, 4},
                                           interleaver_params{288, 6}));

TEST(InterleaverTest, AdjacentBitsSeparatedAcrossSubcarriers) {
  // Key property: adjacent coded bits must map to non-adjacent subcarriers.
  const interleaver il(192, 4);  // 16-QAM
  for (std::size_t k = 0; k + 1 < 192; ++k) {
    const std::size_t sc_a = il.map_index(k) / 4;
    const std::size_t sc_b = il.map_index(k + 1) / 4;
    EXPECT_NE(sc_a, sc_b) << "bits " << k << "," << k + 1;
  }
}

TEST(InterleaverTest, KnownStandardMappingBpsk) {
  // Clause 17.3.5.6 with N_CBPS=48, N_BPSC=1: k=0 -> 0, k=1 -> 3, k=16 -> 1.
  const interleaver il(48, 1);
  EXPECT_EQ(il.map_index(0), 0u);
  EXPECT_EQ(il.map_index(1), 3u);
  EXPECT_EQ(il.map_index(16), 1u);
  EXPECT_EQ(il.map_index(47), 47u);
}

TEST(InterleaverTest, RejectsInvalidBlockSize) {
  EXPECT_THROW(interleaver(0, 1), std::invalid_argument);
  EXPECT_THROW(interleaver(50, 1), std::invalid_argument);
}

}  // namespace
}  // namespace backfi::phy
