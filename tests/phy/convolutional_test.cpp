#include "phy/convolutional.h"

#include <gtest/gtest.h>
#include <algorithm>
#include <array>
#include <limits>

#include "dsp/rng.h"

namespace backfi::phy {
namespace {

TEST(ConvolutionalTest, RateValuesAndNames) {
  EXPECT_DOUBLE_EQ(code_rate_value(code_rate::half), 0.5);
  EXPECT_NEAR(code_rate_value(code_rate::two_thirds), 2.0 / 3.0, 1e-15);
  EXPECT_DOUBLE_EQ(code_rate_value(code_rate::three_quarters), 0.75);
  EXPECT_STREQ(code_rate_name(code_rate::half), "1/2");
}

TEST(ConvolutionalTest, EncodeKnownVector) {
  // 802.11 K=7 (133,171) encoder, all-zero input stays all-zero.
  const bitvec zeros(8, 0);
  const bitvec coded = conv_encode(zeros);
  ASSERT_EQ(coded.size(), 2 * (8 + conv_tail_bits));
  for (auto b : coded) EXPECT_EQ(b, 0);
}

TEST(ConvolutionalTest, SingleOneProducesImpulseResponse) {
  // Input 1 followed by zeros emits the generator taps interleaved:
  // g0 = 133o = 1011011, g1 = 171o = 1111001 (MSB = current input bit).
  const bitvec one = {1};
  const bitvec coded = conv_encode(one);
  // First 7 steps cover the constraint length (1 info bit + 6 tail).
  const bitvec expected_a = {1, 0, 1, 1, 0, 1, 1};  // g0 taps, MSB first
  const bitvec expected_b = {1, 1, 1, 1, 0, 0, 1};  // g1 taps
  ASSERT_EQ(coded.size(), 14u);
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(coded[2 * i], expected_a[i]) << "A output step " << i;
    EXPECT_EQ(coded[2 * i + 1], expected_b[i]) << "B output step " << i;
  }
}

TEST(ConvolutionalTest, HardDecodeNoErrorsRoundTrip) {
  dsp::rng gen(2);
  const bitvec info = gen.random_bits(200);
  const bitvec coded = conv_encode(info);
  EXPECT_EQ(viterbi_decode_hard(coded, info.size()), info);
}

TEST(ConvolutionalTest, CorrectsScatteredBitErrors) {
  dsp::rng gen(3);
  const bitvec info = gen.random_bits(300);
  bitvec coded = conv_encode(info);
  // Flip well-separated bits; K=7 free distance 10 corrects these easily.
  for (std::size_t pos = 10; pos + 40 < coded.size(); pos += 40) coded[pos] ^= 1u;
  EXPECT_EQ(viterbi_decode_hard(coded, info.size()), info);
}

TEST(ConvolutionalTest, SoftDecisionsOutperformErasures) {
  dsp::rng gen(4);
  const bitvec info = gen.random_bits(100);
  const bitvec coded = conv_encode(info);
  std::vector<double> soft(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i)
    soft[i] = coded[i] ? -1.0 : 1.0;
  // Zero out (erase) a long run; decoder should still recover from code
  // memory as long as the run is not catastrophic.
  for (std::size_t i = 50; i < 58; ++i) soft[i] = 0.0;
  EXPECT_EQ(viterbi_decode(soft, info.size()), info);
}

TEST(ConvolutionalTest, PunctureLengthsMatchCodedLength) {
  dsp::rng gen(5);
  for (const code_rate rate :
       {code_rate::half, code_rate::two_thirds, code_rate::three_quarters}) {
    const bitvec info = gen.random_bits(120);
    const bitvec mother = conv_encode(info);
    const bitvec punctured = puncture(mother, rate);
    EXPECT_EQ(punctured.size(), coded_length(info.size(), rate))
        << code_rate_name(rate);
  }
}

TEST(ConvolutionalTest, PuncturedRoundTripAllRates) {
  dsp::rng gen(6);
  for (const code_rate rate :
       {code_rate::half, code_rate::two_thirds, code_rate::three_quarters}) {
    const bitvec info = gen.random_bits(240);
    const bitvec mother = conv_encode(info);
    const bitvec punctured = puncture(mother, rate);
    std::vector<double> soft(punctured.size());
    for (std::size_t i = 0; i < punctured.size(); ++i)
      soft[i] = punctured[i] ? -1.0 : 1.0;
    const auto depunct = depuncture(soft, rate, mother.size());
    ASSERT_EQ(depunct.size(), mother.size());
    EXPECT_EQ(viterbi_decode(depunct, info.size()), info)
        << code_rate_name(rate);
  }
}

TEST(ConvolutionalTest, DepunctureValidatesLength) {
  const std::vector<double> soft(10, 1.0);
  EXPECT_THROW(depuncture(soft, code_rate::two_thirds, 100), std::invalid_argument);
  EXPECT_THROW(depuncture(soft, code_rate::two_thirds, 4), std::invalid_argument);
}

TEST(ConvolutionalTest, DecodeRejectsShortStream) {
  const std::vector<double> soft(10, 1.0);
  EXPECT_THROW(viterbi_decode(soft, 100), std::invalid_argument);
}

class ConvolutionalNoiseTest : public ::testing::TestWithParam<double> {};

TEST_P(ConvolutionalNoiseTest, SoftDecodingSurvivesGaussianNoise) {
  // Property: at Es/N0 >= 3 dB-ish the K=7 code decodes 500 info bits
  // with zero errors w.h.p. under soft decoding.
  const double noise_sigma = GetParam();
  dsp::rng gen(static_cast<std::uint64_t>(noise_sigma * 1000));
  const bitvec info = gen.random_bits(500);
  const bitvec coded = conv_encode(info);
  std::vector<double> soft(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i) {
    const double tx = coded[i] ? -1.0 : 1.0;
    soft[i] = tx + noise_sigma * gen.gaussian();
  }
  const bitvec decoded = viterbi_decode(soft, info.size());
  EXPECT_EQ(hamming_distance(decoded, info), 0u) << "sigma=" << noise_sigma;
}

INSTANTIATE_TEST_SUITE_P(NoiseSweep, ConvolutionalNoiseTest,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7));


/// The pre-restructure scatter-form Viterbi, kept verbatim as a reference:
/// the production decoder now runs a branchless gather over next states,
/// which must stay bit-identical in decoded bits and final path metric.
bitvec reference_viterbi(std::span<const double> soft, std::size_t n_info,
                         double* final_metric) {
  constexpr int kMemory = 6;
  constexpr int kStates = 1 << kMemory;
  constexpr std::uint32_t kG0 = 0b1011011;
  constexpr std::uint32_t kG1 = 0b1111001;
  const auto parity = [](std::uint32_t v) {
    v ^= v >> 16;
    v ^= v >> 8;
    v ^= v >> 4;
    v ^= v >> 2;
    v ^= v >> 1;
    return static_cast<std::uint8_t>(v & 1u);
  };
  std::array<std::array<std::uint8_t, 2>, kStates> next_state, out0, out1;
  for (int s = 0; s < kStates; ++s)
    for (int b = 0; b < 2; ++b) {
      const std::uint32_t reg = (static_cast<std::uint32_t>(b) << kMemory) |
                                static_cast<std::uint32_t>(s);
      out0[s][b] = parity(reg & kG0);
      out1[s][b] = parity(reg & kG1);
      next_state[s][b] = static_cast<std::uint8_t>(reg >> 1);
    }

  const std::size_t n_steps = n_info + conv_tail_bits;
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  std::vector<double> metric(kStates, kNegInf);
  metric[0] = 0.0;
  std::vector<std::uint8_t> survivor_input(n_steps * kStates);
  std::vector<std::uint8_t> survivor_prev(n_steps * kStates);
  std::vector<double> next_metric(kStates);
  for (std::size_t step = 0; step < n_steps; ++step) {
    const double s0 = soft[2 * step];
    const double s1 = soft[2 * step + 1];
    std::fill(next_metric.begin(), next_metric.end(), kNegInf);
    const int max_input = (step < n_info) ? 2 : 1;
    for (int s = 0; s < kStates; ++s) {
      if (metric[s] == kNegInf) continue;
      for (int b = 0; b < max_input; ++b) {
        const double branch =
            (out0[s][b] ? -s0 : s0) + (out1[s][b] ? -s1 : s1);
        const int ns = next_state[s][b];
        const double cand = metric[s] + branch;
        if (cand > next_metric[ns]) {
          next_metric[ns] = cand;
          survivor_input[step * kStates + ns] = static_cast<std::uint8_t>(b);
          survivor_prev[step * kStates + ns] = static_cast<std::uint8_t>(s);
        }
      }
    }
    metric.swap(next_metric);
  }
  if (final_metric) *final_metric = metric[0];
  bitvec decoded(n_steps);
  int state = 0;
  for (std::size_t step = n_steps; step-- > 0;) {
    decoded[step] = survivor_input[step * kStates + state];
    state = survivor_prev[step * kStates + state];
  }
  decoded.resize(n_info);
  return decoded;
}

TEST(ConvolutionalTest, ViterbiMatchesReferenceScatterImplementation) {
  dsp::rng gen(7);
  for (const std::size_t n_info :
       {std::size_t{8}, std::size_t{40}, std::size_t{96}, std::size_t{632}}) {
    for (int rep = 0; rep < 3; ++rep) {
      bitvec info(n_info);
      for (auto& b : info) b = static_cast<std::uint8_t>(gen.uniform_int(2));
      const bitvec mother = conv_encode(info);
      std::vector<double> soft(mother.size());
      for (std::size_t i = 0; i < soft.size(); ++i)
        soft[i] = ((mother[i] & 1u) ? -1.0 : 1.0) + 0.6 * gen.gaussian();
      double ref_metric = 0.0, got_metric = 0.0;
      const bitvec ref = reference_viterbi(soft, n_info, &ref_metric);
      const bitvec got = viterbi_decode(soft, n_info, &got_metric);
      ASSERT_EQ(got, ref) << "n_info " << n_info << " rep " << rep;
      ASSERT_EQ(got_metric, ref_metric) << "n_info " << n_info << " rep " << rep;
    }
  }
}

TEST(ConvolutionalTest, ViterbiMatchesReferenceWithErasures) {
  // Depunctured streams interleave true soft values with 0.0 erasures; the
  // branchless select must break the resulting exact metric ties the same
  // way the scatter loop did (first writer wins).
  dsp::rng gen(8);
  const std::size_t n_info = 120;
  bitvec info(n_info);
  for (auto& b : info) b = static_cast<std::uint8_t>(gen.uniform_int(2));
  const bitvec mother = conv_encode(info);
  const bitvec sent = puncture(mother, code_rate::three_quarters);
  std::vector<double> soft_sent(sent.size());
  for (std::size_t i = 0; i < soft_sent.size(); ++i)
    soft_sent[i] = ((sent[i] & 1u) ? -1.0 : 1.0) + 0.4 * gen.gaussian();
  const std::vector<double> soft =
      depuncture(soft_sent, code_rate::three_quarters, mother.size());
  double ref_metric = 0.0, got_metric = 0.0;
  const bitvec ref = reference_viterbi(soft, n_info, &ref_metric);
  const bitvec got = viterbi_decode(soft, n_info, &got_metric);
  ASSERT_EQ(got, ref);
  ASSERT_EQ(got_metric, ref_metric);
}

TEST(ConvolutionalTest, AllErasureBlockDecodesDeterministically) {
  // A burst that wipes the whole coded block leaves the decoder nothing
  // but the trellis structure: every surviving path has metric 0 and the
  // tie-break must resolve identically to the scatter reference, run
  // after run (the erasure-coding layer above depends on the PHY not
  // turning dead air into nondeterminism).
  const std::size_t n_info = 64;
  const std::vector<double> erased(2 * (n_info + conv_tail_bits), 0.0);
  double ref_metric = 1.0, got_metric = 2.0;
  const bitvec ref = reference_viterbi(erased, n_info, &ref_metric);
  const bitvec got = viterbi_decode(erased, n_info, &got_metric);
  ASSERT_EQ(got, ref);
  ASSERT_EQ(got_metric, ref_metric);
  EXPECT_EQ(got_metric, 0.0);
  const bitvec again = viterbi_decode(erased, n_info, nullptr);
  EXPECT_EQ(again, got);

  // Same all-erasure property arriving through the depuncture path.
  const bitvec mother = conv_encode(bitvec(n_info, 0));
  const std::vector<double> sent(
      coded_length(n_info, code_rate::two_thirds), 0.0);
  const auto depunct = depuncture(sent, code_rate::two_thirds, mother.size());
  ASSERT_EQ(depunct.size(), mother.size());
  for (const double v : depunct) EXPECT_EQ(v, 0.0);
  EXPECT_EQ(viterbi_decode(depunct, n_info), got);
}

TEST(ConvolutionalTest, AlternatingErasuresMatchScatterReference) {
  // Every second mother position erased — denser than any 802.11 puncture
  // pattern, the regime a striped coded symbol stream hits when alternate
  // packets die. Exact metric ties abound; bits and path metric must stay
  // bit-identical to the reference.
  dsp::rng gen(9);
  const std::size_t n_info = 160;
  bitvec info(n_info);
  for (auto& b : info) b = static_cast<std::uint8_t>(gen.uniform_int(2));
  const bitvec mother = conv_encode(info);
  std::vector<double> soft(mother.size());
  for (std::size_t i = 0; i < soft.size(); ++i)
    soft[i] = (i % 2 == 1) ? 0.0
                           : ((mother[i] & 1u) ? -1.0 : 1.0) +
                                 0.3 * gen.gaussian();
  double ref_metric = 0.0, got_metric = 0.0;
  const bitvec ref = reference_viterbi(soft, n_info, &ref_metric);
  const bitvec got = viterbi_decode(soft, n_info, &got_metric);
  ASSERT_EQ(got, ref);
  ASSERT_EQ(got_metric, ref_metric);

  // A milder stripe (every 4th position erased, clean elsewhere) is within
  // the K=7 code's power: the info must round-trip exactly.
  std::vector<double> mild(mother.size());
  for (std::size_t i = 0; i < mild.size(); ++i)
    mild[i] = (i % 4 == 3) ? 0.0 : ((mother[i] & 1u) ? -1.0 : 1.0);
  EXPECT_EQ(viterbi_decode(mild, n_info), info);
}

TEST(ConvolutionalTest, QuantizedMetricsTieDenselyAndStillMatchReference) {
  // Soft values quantized to {-1, 0, +1} make exact path-metric ties the
  // common case rather than the exception at every trellis step — the
  // densest stress on the ACS select's first-writer-wins tie break (now a
  // vectorized compare in viterbi_kernels.cpp).
  dsp::rng gen(11);
  for (int rep = 0; rep < 5; ++rep) {
    const std::size_t n_info = 200;
    bitvec info(n_info);
    for (auto& b : info) b = static_cast<std::uint8_t>(gen.uniform_int(2));
    const bitvec mother = conv_encode(info);
    std::vector<double> soft(mother.size());
    for (std::size_t i = 0; i < soft.size(); ++i)
      soft[i] = static_cast<double>(
          static_cast<int>(gen.uniform_int(3)) - 1);
    double ref_metric = 0.0, got_metric = 0.0;
    const bitvec ref = reference_viterbi(soft, n_info, &ref_metric);
    const bitvec got = viterbi_decode(soft, n_info, &got_metric);
    ASSERT_EQ(got, ref) << "rep " << rep;
    ASSERT_EQ(got_metric, ref_metric) << "rep " << rep;
  }
}

TEST(ConvolutionalTest, DepunctureIntoMatchesAllocatingForm) {
  dsp::rng gen(12);
  for (const code_rate rate :
       {code_rate::half, code_rate::two_thirds, code_rate::three_quarters}) {
    const std::size_t mother_length = 2 * (60 + conv_tail_bits);
    const std::size_t kept = coded_length(60, rate);
    std::vector<double> soft(kept);
    for (auto& s : soft) s = gen.gaussian();
    const auto expected = depuncture(soft, rate, mother_length);
    std::vector<double> got(7, -123.0);  // dirty, wrong-sized warm buffer
    depuncture_into(soft, rate, mother_length, got);
    ASSERT_EQ(got, expected);
    // Length validation still throws through the _into spelling.
    std::vector<double> short_soft(soft.begin(), soft.end() - 1);
    EXPECT_THROW(depuncture_into(short_soft, rate, mother_length, got),
                 std::invalid_argument);
  }
}

TEST(ConvolutionalTest, NegInfMetricsPropagateThroughErasureRuns) {
  // Unreachable trellis states carry -inf path metrics; adding huge branch
  // magnitudes to them must keep them -inf (never NaN, never a winner).
  // Near-certain symbols (1e300) scattered through long erasure runs push
  // the arithmetic to the edge where a mishandled -inf would first show:
  // the gather decoder must still match the scatter reference exactly.
  dsp::rng gen(10);
  const std::size_t n_info = 96;
  bitvec info(n_info);
  for (auto& b : info) b = static_cast<std::uint8_t>(gen.uniform_int(2));
  const bitvec mother = conv_encode(info);
  std::vector<double> soft(mother.size(), 0.0);
  for (std::size_t i = 0; i < soft.size(); i += 7)
    soft[i] = (mother[i] & 1u) ? -1e300 : 1e300;
  double ref_metric = 0.0, got_metric = 0.0;
  const bitvec ref = reference_viterbi(soft, n_info, &ref_metric);
  const bitvec got = viterbi_decode(soft, n_info, &got_metric);
  ASSERT_EQ(got, ref);
  ASSERT_EQ(got_metric, ref_metric);
  // The certainty agreed with the true codeword, so the winning path
  // matched every certain position: a positive, finite metric.
  EXPECT_TRUE(std::isfinite(got_metric));
  EXPECT_GT(got_metric, 0.0);
}

}  // namespace
}  // namespace backfi::phy
