#include "phy/convolutional.h"

#include <gtest/gtest.h>

#include "dsp/rng.h"

namespace backfi::phy {
namespace {

TEST(ConvolutionalTest, RateValuesAndNames) {
  EXPECT_DOUBLE_EQ(code_rate_value(code_rate::half), 0.5);
  EXPECT_NEAR(code_rate_value(code_rate::two_thirds), 2.0 / 3.0, 1e-15);
  EXPECT_DOUBLE_EQ(code_rate_value(code_rate::three_quarters), 0.75);
  EXPECT_STREQ(code_rate_name(code_rate::half), "1/2");
}

TEST(ConvolutionalTest, EncodeKnownVector) {
  // 802.11 K=7 (133,171) encoder, all-zero input stays all-zero.
  const bitvec zeros(8, 0);
  const bitvec coded = conv_encode(zeros);
  ASSERT_EQ(coded.size(), 2 * (8 + conv_tail_bits));
  for (auto b : coded) EXPECT_EQ(b, 0);
}

TEST(ConvolutionalTest, SingleOneProducesImpulseResponse) {
  // Input 1 followed by zeros emits the generator taps interleaved:
  // g0 = 133o = 1011011, g1 = 171o = 1111001 (MSB = current input bit).
  const bitvec one = {1};
  const bitvec coded = conv_encode(one);
  // First 7 steps cover the constraint length (1 info bit + 6 tail).
  const bitvec expected_a = {1, 0, 1, 1, 0, 1, 1};  // g0 taps, MSB first
  const bitvec expected_b = {1, 1, 1, 1, 0, 0, 1};  // g1 taps
  ASSERT_EQ(coded.size(), 14u);
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(coded[2 * i], expected_a[i]) << "A output step " << i;
    EXPECT_EQ(coded[2 * i + 1], expected_b[i]) << "B output step " << i;
  }
}

TEST(ConvolutionalTest, HardDecodeNoErrorsRoundTrip) {
  dsp::rng gen(2);
  const bitvec info = gen.random_bits(200);
  const bitvec coded = conv_encode(info);
  EXPECT_EQ(viterbi_decode_hard(coded, info.size()), info);
}

TEST(ConvolutionalTest, CorrectsScatteredBitErrors) {
  dsp::rng gen(3);
  const bitvec info = gen.random_bits(300);
  bitvec coded = conv_encode(info);
  // Flip well-separated bits; K=7 free distance 10 corrects these easily.
  for (std::size_t pos = 10; pos + 40 < coded.size(); pos += 40) coded[pos] ^= 1u;
  EXPECT_EQ(viterbi_decode_hard(coded, info.size()), info);
}

TEST(ConvolutionalTest, SoftDecisionsOutperformErasures) {
  dsp::rng gen(4);
  const bitvec info = gen.random_bits(100);
  const bitvec coded = conv_encode(info);
  std::vector<double> soft(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i)
    soft[i] = coded[i] ? -1.0 : 1.0;
  // Zero out (erase) a long run; decoder should still recover from code
  // memory as long as the run is not catastrophic.
  for (std::size_t i = 50; i < 58; ++i) soft[i] = 0.0;
  EXPECT_EQ(viterbi_decode(soft, info.size()), info);
}

TEST(ConvolutionalTest, PunctureLengthsMatchCodedLength) {
  dsp::rng gen(5);
  for (const code_rate rate :
       {code_rate::half, code_rate::two_thirds, code_rate::three_quarters}) {
    const bitvec info = gen.random_bits(120);
    const bitvec mother = conv_encode(info);
    const bitvec punctured = puncture(mother, rate);
    EXPECT_EQ(punctured.size(), coded_length(info.size(), rate))
        << code_rate_name(rate);
  }
}

TEST(ConvolutionalTest, PuncturedRoundTripAllRates) {
  dsp::rng gen(6);
  for (const code_rate rate :
       {code_rate::half, code_rate::two_thirds, code_rate::three_quarters}) {
    const bitvec info = gen.random_bits(240);
    const bitvec mother = conv_encode(info);
    const bitvec punctured = puncture(mother, rate);
    std::vector<double> soft(punctured.size());
    for (std::size_t i = 0; i < punctured.size(); ++i)
      soft[i] = punctured[i] ? -1.0 : 1.0;
    const auto depunct = depuncture(soft, rate, mother.size());
    ASSERT_EQ(depunct.size(), mother.size());
    EXPECT_EQ(viterbi_decode(depunct, info.size()), info)
        << code_rate_name(rate);
  }
}

TEST(ConvolutionalTest, DepunctureValidatesLength) {
  const std::vector<double> soft(10, 1.0);
  EXPECT_THROW(depuncture(soft, code_rate::two_thirds, 100), std::invalid_argument);
  EXPECT_THROW(depuncture(soft, code_rate::two_thirds, 4), std::invalid_argument);
}

TEST(ConvolutionalTest, DecodeRejectsShortStream) {
  const std::vector<double> soft(10, 1.0);
  EXPECT_THROW(viterbi_decode(soft, 100), std::invalid_argument);
}

class ConvolutionalNoiseTest : public ::testing::TestWithParam<double> {};

TEST_P(ConvolutionalNoiseTest, SoftDecodingSurvivesGaussianNoise) {
  // Property: at Es/N0 >= 3 dB-ish the K=7 code decodes 500 info bits
  // with zero errors w.h.p. under soft decoding.
  const double noise_sigma = GetParam();
  dsp::rng gen(static_cast<std::uint64_t>(noise_sigma * 1000));
  const bitvec info = gen.random_bits(500);
  const bitvec coded = conv_encode(info);
  std::vector<double> soft(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i) {
    const double tx = coded[i] ? -1.0 : 1.0;
    soft[i] = tx + noise_sigma * gen.gaussian();
  }
  const bitvec decoded = viterbi_decode(soft, info.size());
  EXPECT_EQ(hamming_distance(decoded, info), 0u) << "sigma=" << noise_sigma;
}

INSTANTIATE_TEST_SUITE_P(NoiseSweep, ConvolutionalNoiseTest,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7));

}  // namespace
}  // namespace backfi::phy
