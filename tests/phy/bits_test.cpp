#include "phy/bits.h"

#include <gtest/gtest.h>

namespace backfi::phy {
namespace {

TEST(BitsTest, BytesToBitsLsbFirst) {
  const std::uint8_t bytes[] = {0x01, 0x80};
  const bitvec bits = bytes_to_bits(bytes);
  ASSERT_EQ(bits.size(), 16u);
  EXPECT_EQ(bits[0], 1);  // LSB of 0x01
  for (int i = 1; i < 8; ++i) EXPECT_EQ(bits[i], 0);
  for (int i = 8; i < 15; ++i) EXPECT_EQ(bits[i], 0);
  EXPECT_EQ(bits[15], 1);  // MSB of 0x80
}

TEST(BitsTest, RoundTripBytes) {
  const std::vector<std::uint8_t> bytes = {0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x7F};
  EXPECT_EQ(bits_to_bytes(bytes_to_bits(bytes)), bytes);
}

TEST(BitsTest, BitsToBytesRejectsPartialByte) {
  const bitvec bits(7, 1);
  EXPECT_THROW(bits_to_bytes(bits), std::invalid_argument);
}

TEST(BitsTest, StringRoundTrip) {
  const std::string text = "BackFi tag #1";
  EXPECT_EQ(bits_to_string(string_to_bits(text)), text);
}

TEST(BitsTest, HammingDistanceCountsDifferences) {
  const bitvec a = {0, 1, 0, 1};
  const bitvec b = {0, 1, 1, 0};
  EXPECT_EQ(hamming_distance(a, b), 2u);
}

TEST(BitsTest, HammingDistanceCountsLengthMismatch) {
  const bitvec a = {0, 1};
  const bitvec b = {0, 1, 1, 1};
  EXPECT_EQ(hamming_distance(a, b), 2u);
}

TEST(BitsTest, UintRoundTripMsbFirst) {
  bitvec bits;
  append_uint(bits, 0xA5, 8);
  EXPECT_EQ(bits_to_uint(bits, 0, 8), 0xA5u);
  append_uint(bits, 0x3, 2);
  EXPECT_EQ(bits_to_uint(bits, 8, 2), 0x3u);
  EXPECT_EQ(bits.size(), 10u);
  // MSB first: 0xA5 = 10100101
  EXPECT_EQ(bits[0], 1);
  EXPECT_EQ(bits[1], 0);
  EXPECT_EQ(bits[7], 1);
}

}  // namespace
}  // namespace backfi::phy
