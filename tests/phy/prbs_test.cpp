#include "phy/prbs.h"

#include <gtest/gtest.h>

#include <set>

namespace backfi::phy {
namespace {

int correlate_bipolar(const bitvec& a, const bitvec& b) {
  int acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    acc += (a[i] == b[i]) ? 1 : -1;
  return acc;
}

TEST(PrbsTest, LfsrIsDeterministic) {
  lfsr a(0x6000u, 0x1234u);
  lfsr b(0x6000u, 0x1234u);
  EXPECT_EQ(a.bits(256), b.bits(256));
}

TEST(PrbsTest, LfsrMaximalPeriod) {
  // x^15 + x^14 + 1 m-sequence has period 2^15 - 1.
  lfsr gen(0x6000u, 0x1u);
  const bitvec seq = gen.bits(2 * 32767);
  for (std::size_t i = 0; i < 32767; ++i)
    ASSERT_EQ(seq[i], seq[i + 32767]) << "period mismatch at " << i;
  // And it is not shorter: first half must differ from a shift of itself.
  bool all_same = true;
  for (std::size_t i = 0; i + 100 < 32767 && all_same; ++i)
    if (seq[i] != seq[i + 100]) all_same = false;
  EXPECT_FALSE(all_same);
}

TEST(PrbsTest, LfsrBalancedOutput) {
  lfsr gen(0x6000u, 0x7FFu);
  const bitvec seq = gen.bits(32767);
  int ones = 0;
  for (auto b : seq) ones += b;
  // m-sequence has exactly 2^14 ones in one period.
  EXPECT_EQ(ones, 16384);
}

TEST(PrbsTest, WakePreambleStartsWithPulseAndIsStablePerTag) {
  const bitvec p1 = wake_preamble(7);
  const bitvec p2 = wake_preamble(7);
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(p1.size(), 16u);
  EXPECT_EQ(p1[0], 1);
}

TEST(PrbsTest, WakePreamblesDifferAcrossTags) {
  std::set<bitvec> unique;
  for (std::uint32_t id = 0; id < 32; ++id) unique.insert(wake_preamble(id));
  EXPECT_GT(unique.size(), 28u);
}

TEST(PrbsTest, SyncSequenceHasSharpAutocorrelation) {
  const bitvec seq = sync_sequence(3, 640);
  const int peak = correlate_bipolar(seq, seq);
  EXPECT_EQ(peak, 640);
  // Shifted versions should correlate much lower.
  for (std::size_t shift : {1u, 7u, 63u}) {
    bitvec shifted(seq.begin() + shift, seq.end());
    shifted.insert(shifted.end(), seq.begin(), seq.begin() + shift);
    const int side = correlate_bipolar(seq, shifted);
    EXPECT_LT(std::abs(side), peak / 4) << "shift " << shift;
  }
}

TEST(PrbsTest, SyncSequenceDiffersFromWakePreamble) {
  const bitvec wake = wake_preamble(5, 64);
  const bitvec sync = sync_sequence(5, 64);
  EXPECT_NE(wake, sync);
}

}  // namespace
}  // namespace backfi::phy
