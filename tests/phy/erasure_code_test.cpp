#include "phy/erasure_code.h"

#include <gtest/gtest.h>

#include <numeric>

#include "dsp/rng.h"

namespace backfi::phy {
namespace {

std::vector<std::uint8_t> random_block(std::size_t k, std::size_t bytes,
                                       std::uint64_t seed) {
  dsp::rng gen(seed);
  std::vector<std::uint8_t> data(k * bytes);
  for (auto& b : data) b = static_cast<std::uint8_t>(gen.uniform_int(256));
  return data;
}

TEST(Gf256Test, FieldAxiomsHoldOnSamples) {
  // Spot-check associativity/distributivity and the inverse identity over
  // a deterministic sample of the field.
  dsp::rng gen(3);
  for (int i = 0; i < 200; ++i) {
    const auto a = static_cast<std::uint8_t>(gen.uniform_int(256));
    const auto b = static_cast<std::uint8_t>(gen.uniform_int(256));
    const auto c = static_cast<std::uint8_t>(gen.uniform_int(256));
    EXPECT_EQ(gf256_mul(a, gf256_mul(b, c)), gf256_mul(gf256_mul(a, b), c));
    EXPECT_EQ(gf256_mul(a, static_cast<std::uint8_t>(b ^ c)),
              gf256_mul(a, b) ^ gf256_mul(a, c));
    if (b != 0) {
      EXPECT_EQ(gf256_mul(b, gf256_inv(b)), 1);
      EXPECT_EQ(gf256_mul(gf256_div(a, b), b), a);
    }
  }
  EXPECT_EQ(gf256_mul(0, 17), 0);
  EXPECT_EQ(gf256_mul(1, 17), 17);
  EXPECT_THROW(gf256_inv(0), std::invalid_argument);
  EXPECT_THROW(gf256_div(1, 0), std::invalid_argument);
}

TEST(ErasureSpecTest, ScheduledSymbolsPerScheme) {
  erasure_spec spec;
  spec.block_symbols = 8;
  spec.rs_repair_symbols = 4;
  spec.fountain_overhead = 0.25;
  spec.scheme = erasure_scheme::none;
  EXPECT_EQ(spec.scheduled_symbols(), 8u);
  spec.scheme = erasure_scheme::reed_solomon;
  EXPECT_EQ(spec.scheduled_symbols(), 12u);
  spec.scheme = erasure_scheme::fountain;
  EXPECT_EQ(spec.scheduled_symbols(), 10u);
  EXPECT_EQ(spec.packet_payload_bits(), erasure_header_bits + 128u);
  EXPECT_EQ(spec.block_payload_bits(), 8u * 16u * 8u);
}

TEST(CodedPacketTest, HeaderRoundTrip) {
  erasure_spec spec;
  spec.symbol_bytes = 5;
  const std::vector<std::uint8_t> symbol = {1, 2, 250, 0, 255};
  const bitvec bits = pack_coded_packet(513, 42, symbol);
  EXPECT_EQ(bits.size(), spec.packet_payload_bits());
  std::uint32_t block = 0, esi = 0;
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(unpack_coded_packet(bits, spec, block, esi, out));
  EXPECT_EQ(block, 513u);
  EXPECT_EQ(esi, 42u);
  EXPECT_EQ(out, symbol);
  // Wrong length is rejected, not misparsed.
  bitvec truncated(bits.begin(), bits.end() - 8);
  EXPECT_FALSE(unpack_coded_packet(truncated, spec, block, esi, out));
}

TEST(ReedSolomonTest, SystematicPrefixIsVerbatim) {
  const std::size_t k = 6, bytes = 9;
  const auto data = random_block(k, bytes, 11);
  for (std::size_t esi = 0; esi < k; ++esi) {
    const auto sym = rs_encode_symbol(data, k, bytes, esi);
    EXPECT_TRUE(std::equal(sym.begin(), sym.end(),
                           data.begin() + static_cast<std::ptrdiff_t>(
                                              esi * bytes)));
  }
}

TEST(ReedSolomonTest, AnyKSymbolsReconstructTheBlock) {
  const std::size_t k = 8, bytes = 16;
  const auto data = random_block(k, bytes, 29);
  // Generate symbols 0..k+5, then decode from several survivor patterns:
  // repair-only, mixed, and interleaved-loss.
  std::vector<std::vector<std::uint8_t>> symbols;
  for (std::size_t esi = 0; esi < k + 6; ++esi)
    symbols.push_back(rs_encode_symbol(data, k, bytes, esi));
  const std::vector<std::vector<std::uint32_t>> survivor_sets = {
      {8, 9, 10, 11, 12, 13, 0, 1},   // mostly repair
      {0, 2, 4, 6, 8, 10, 12, 13},    // alternating loss
      {13, 12, 11, 10, 3, 2, 1, 0},   // arrival order reversed
  };
  for (const auto& esis : survivor_sets) {
    std::vector<std::vector<std::uint8_t>> received;
    for (const std::uint32_t e : esis) received.push_back(symbols[e]);
    const auto decoded = rs_decode_block(esis, received, k, bytes);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, data);
  }
}

TEST(ReedSolomonTest, FewerThanKSymbolsStaysPending) {
  const std::size_t k = 5, bytes = 4;
  const auto data = random_block(k, bytes, 7);
  std::vector<std::uint32_t> esis = {0, 5, 6, 6};  // duplicate ESI ignored
  std::vector<std::vector<std::uint8_t>> received;
  for (const std::uint32_t e : esis)
    received.push_back(rs_encode_symbol(data, k, bytes, e));
  EXPECT_FALSE(rs_decode_block(esis, received, k, bytes).has_value());
}

TEST(ReedSolomonTest, FieldLimitsAreEnforced) {
  const auto data = random_block(4, 2, 1);
  EXPECT_THROW(rs_encode_symbol(data, 4, 2, 255), std::invalid_argument);
  EXPECT_THROW(rs_encode_symbol(data, 0, 2, 0), std::invalid_argument);
  EXPECT_THROW(rs_encode_symbol(data, 5, 2, 0), std::invalid_argument);
}

TEST(SolitonTest, PmfIsNormalizedAndDeterministic) {
  const auto pmf = robust_soliton_pmf(32, 0.1, 0.5);
  ASSERT_EQ(pmf.size(), 32u);
  const double total = std::accumulate(pmf.begin(), pmf.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-12);
  for (const double p : pmf) EXPECT_GE(p, 0.0);
  // Degree 2 dominates the ideal soliton part.
  EXPECT_GT(pmf[1], pmf[4]);
  EXPECT_EQ(pmf, robust_soliton_pmf(32, 0.1, 0.5));
  EXPECT_EQ(robust_soliton_pmf(1, 0.1, 0.5), std::vector<double>{1.0});
  EXPECT_THROW(robust_soliton_pmf(0, 0.1, 0.5), std::invalid_argument);
  EXPECT_THROW(robust_soliton_pmf(8, 0.1, 1.5), std::invalid_argument);
}

TEST(FountainTest, NeighborsAreDeterministicAndSeeded) {
  erasure_spec spec;
  spec.scheme = erasure_scheme::fountain;
  spec.block_symbols = 16;
  spec.seed = 77;
  for (std::uint32_t esi = 0; esi < 16; ++esi) {
    const auto n = lt_neighbors(spec, 3, esi);
    ASSERT_EQ(n.size(), 1u);  // systematic prefix
    EXPECT_EQ(n[0], esi);
  }
  const auto a = lt_neighbors(spec, 3, 40);
  EXPECT_EQ(a, lt_neighbors(spec, 3, 40));
  ASSERT_GE(a.size(), 1u);
  for (const std::size_t n : a) EXPECT_LT(n, spec.block_symbols);
  // Different seed, block or esi must be able to change the draw; check a
  // few indices differ somewhere (overwhelmingly likely).
  erasure_spec other = spec;
  other.seed = 78;
  bool any_diff = false;
  for (std::uint32_t esi = 16; esi < 48; ++esi)
    any_diff |= lt_neighbors(spec, 3, esi) != lt_neighbors(other, 3, esi);
  EXPECT_TRUE(any_diff);
}

TEST(FountainTest, SystematicDeliveryDecodesAtExactlyK) {
  erasure_spec spec;
  spec.scheme = erasure_scheme::fountain;
  spec.block_symbols = 12;
  spec.symbol_bytes = 8;
  const auto data = random_block(spec.block_symbols, spec.symbol_bytes, 5);
  lt_decoder decoder(spec.block_symbols, spec.symbol_bytes);
  for (std::uint32_t esi = 0; esi < spec.block_symbols; ++esi) {
    const auto sym = lt_encode_symbol(spec, data, 0, esi);
    decoder.add_symbol(lt_neighbors(spec, 0, esi), sym);
  }
  ASSERT_TRUE(decoder.complete());
  EXPECT_EQ(decoder.data(), data);
}

TEST(FountainTest, RepairOnlyDeliveryDecodesWithOverhead) {
  erasure_spec spec;
  spec.scheme = erasure_scheme::fountain;
  spec.block_symbols = 16;
  spec.symbol_bytes = 4;
  spec.seed = 9;
  const auto data = random_block(spec.block_symbols, spec.symbol_bytes, 21);
  // Lose the entire systematic prefix: only ESIs >= k arrive. The decoder
  // must still finish from pseudo-random combinations alone.
  lt_decoder decoder(spec.block_symbols, spec.symbol_bytes);
  std::uint32_t esi = static_cast<std::uint32_t>(spec.block_symbols);
  std::size_t fed = 0;
  while (!decoder.complete() && fed < 20 * spec.block_symbols) {
    decoder.add_symbol(lt_neighbors(spec, 1, esi),
                       lt_encode_symbol(spec, data, 1, esi));
    ++esi;
    ++fed;
  }
  ASSERT_TRUE(decoder.complete());
  EXPECT_EQ(decoder.data(), data);
  // Rateless efficiency: well under 4x overhead for this geometry.
  EXPECT_LT(decoder.symbols_received(), 4 * spec.block_symbols);
}

TEST(FountainTest, RedundantSymbolsAreAbsorbed) {
  erasure_spec spec;
  spec.block_symbols = 4;
  spec.symbol_bytes = 2;
  const auto data = random_block(4, 2, 2);
  lt_decoder decoder(4, 2);
  const auto sym0 = lt_encode_symbol(spec, data, 0, 0);
  for (int i = 0; i < 5; ++i)
    decoder.add_symbol(lt_neighbors(spec, 0, 0), sym0);
  EXPECT_EQ(decoder.rank(), 1u);
  EXPECT_EQ(decoder.symbols_received(), 5u);
  EXPECT_FALSE(decoder.complete());
  EXPECT_THROW(decoder.data(), std::logic_error);
}

TEST(FountainTest, LargeBlockCrossesWordBoundaries) {
  // k > 64 exercises the multi-word GF(2) masks.
  erasure_spec spec;
  spec.scheme = erasure_scheme::fountain;
  spec.block_symbols = 80;
  spec.symbol_bytes = 3;
  spec.seed = 13;
  const auto data = random_block(spec.block_symbols, spec.symbol_bytes, 17);
  lt_decoder decoder(spec.block_symbols, spec.symbol_bytes);
  // Drop every third systematic symbol, then repair from the stream.
  for (std::uint32_t esi = 0; esi < spec.block_symbols; ++esi) {
    if (esi % 3 == 0) continue;
    decoder.add_symbol(lt_neighbors(spec, 2, esi),
                       lt_encode_symbol(spec, data, 2, esi));
  }
  std::uint32_t esi = static_cast<std::uint32_t>(spec.block_symbols);
  std::size_t guard = 0;
  while (!decoder.complete() && guard++ < 2000) {
    decoder.add_symbol(lt_neighbors(spec, 2, esi),
                       lt_encode_symbol(spec, data, 2, esi));
    ++esi;
  }
  ASSERT_TRUE(decoder.complete());
  EXPECT_EQ(decoder.data(), data);
}

}  // namespace
}  // namespace backfi::phy
