#include "phy/constellation.h"

#include <gtest/gtest.h>

#include <limits>

#include "dsp/rng.h"

namespace backfi::phy {
namespace {

TEST(GrayTest, EncodeDecodeRoundTrip) {
  for (std::uint32_t v = 0; v < 64; ++v) EXPECT_EQ(gray_decode(gray_encode(v)), v);
}

TEST(GrayTest, AdjacentValuesDifferInOneBit) {
  for (std::uint32_t v = 0; v + 1 < 64; ++v) {
    const std::uint32_t diff = gray_encode(v) ^ gray_encode(v + 1);
    EXPECT_EQ(diff & (diff - 1), 0u) << v;  // power of two -> single bit
  }
}

class WifiConstellationTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WifiConstellationTest, UnitMeanEnergy) {
  const auto& c = wifi_constellation(GetParam());
  EXPECT_NEAR(c.mean_energy(), 1.0, 1e-12);
}

TEST_P(WifiConstellationTest, MapDemapHardRoundTrip) {
  const auto& c = wifi_constellation(GetParam());
  dsp::rng gen(GetParam());
  const bitvec bits = gen.random_bits(c.bits_per_symbol * 100);
  const cvec symbols = c.map(bits);
  EXPECT_EQ(c.demap_hard(symbols), bits);
}

TEST_P(WifiConstellationTest, LlrSignsMatchTransmittedBits) {
  const auto& c = wifi_constellation(GetParam());
  dsp::rng gen(GetParam() + 100);
  const bitvec bits = gen.random_bits(c.bits_per_symbol * 50);
  const cvec symbols = c.map(bits);
  const auto llrs = c.demap_llr_stream(symbols, 0.01);
  ASSERT_EQ(llrs.size(), bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    // positive favours bit 0
    EXPECT_EQ(llrs[i] < 0.0, bits[i] != 0) << "bit " << i;
  }
}

TEST_P(WifiConstellationTest, NoisyLlrMajorityCorrect) {
  const auto& c = wifi_constellation(GetParam());
  dsp::rng gen(GetParam() + 200);
  const bitvec bits = gen.random_bits(c.bits_per_symbol * 500);
  cvec symbols = c.map(bits);
  const double sigma = 0.05;
  for (auto& s : symbols) s += sigma * gen.complex_gaussian();
  const auto llrs = c.demap_llr_stream(symbols, sigma * sigma);
  std::size_t wrong = 0;
  for (std::size_t i = 0; i < bits.size(); ++i)
    if ((llrs[i] < 0.0) != (bits[i] != 0)) ++wrong;
  EXPECT_LT(wrong, bits.size() / 100);
}

INSTANTIATE_TEST_SUITE_P(AllOrders, WifiConstellationTest,
                         ::testing::Values(1u, 2u, 4u, 6u));

TEST(WifiConstellationTest, BpskMapsOnRealAxis) {
  const auto& c = wifi_constellation(1);
  const bitvec bits = {0, 1};
  const cvec pts = c.map(bits);
  EXPECT_NEAR(pts[0].real(), -1.0, 1e-15);
  EXPECT_NEAR(pts[1].real(), 1.0, 1e-15);
  EXPECT_NEAR(pts[0].imag(), 0.0, 1e-15);
}

TEST(WifiConstellationTest, SixteenQamCornerPoint) {
  // Label 0b1010 -> I bits 10 -> +3, Q bits 10 -> +3 (times 1/sqrt(10)).
  const auto& c = wifi_constellation(4);
  const bitvec bits = {1, 0, 1, 0};
  const cvec pts = c.map(bits);
  const double k = 1.0 / std::sqrt(10.0);
  EXPECT_NEAR(pts[0].real(), 3.0 * k, 1e-12);
  EXPECT_NEAR(pts[0].imag(), 3.0 * k, 1e-12);
}

TEST(WifiConstellationTest, RejectsUnsupportedOrder) {
  EXPECT_THROW(wifi_constellation(3), std::invalid_argument);
}

class PskConstellationTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PskConstellationTest, PointsOnUnitCircle) {
  const auto& c = psk_constellation(GetParam());
  for (const cplx& p : c.points) EXPECT_NEAR(std::abs(p), 1.0, 1e-12);
}

TEST_P(PskConstellationTest, AdjacentPhasesAreGrayNeighbours) {
  const auto& c = psk_constellation(GetParam());
  const std::size_t order = c.points.size();
  for (std::size_t k = 0; k < order; ++k) {
    const std::uint32_t diff = c.labels[k] ^ c.labels[(k + 1) % order];
    EXPECT_EQ(diff & (diff - 1), 0u) << "phase step " << k;
  }
}

TEST_P(PskConstellationTest, MapDemapRoundTrip) {
  const auto& c = psk_constellation(GetParam());
  dsp::rng gen(GetParam() + 300);
  const bitvec bits = gen.random_bits(c.bits_per_symbol * 64);
  EXPECT_EQ(c.demap_hard(c.map(bits)), bits);
}

TEST_P(PskConstellationTest, SliceRobustToSmallPhaseError) {
  const auto& c = psk_constellation(GetParam());
  const double half_step = pi / static_cast<double>(c.points.size());
  for (std::size_t k = 0; k < c.points.size(); ++k) {
    const cplx rotated = c.points[k] * cplx{std::cos(half_step * 0.8),
                                            std::sin(half_step * 0.8)};
    EXPECT_EQ(c.slice(rotated), c.labels[k]) << "point " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(AllOrders, PskConstellationTest,
                         ::testing::Values(2u, 4u, 8u, 16u));

TEST(PskConstellationTest, RejectsUnsupportedOrder) {
  EXPECT_THROW(psk_constellation(3), std::invalid_argument);
  EXPECT_THROW(psk_constellation(32), std::invalid_argument);
}

TEST(ConstellationTest, MapRejectsMisalignedBits) {
  const auto& c = wifi_constellation(2);
  const bitvec bits(3, 1);
  EXPECT_THROW(c.map(bits), std::invalid_argument);
}

// The scan slice() replaced: ascending index, strict `<`, first point at the
// minimum distance wins. The vectorized nearest-point kernel must agree on
// every input, including exact ties and non-finite symbols.
std::uint32_t reference_slice(const constellation& c, cplx y) {
  std::size_t best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < c.points.size(); ++i) {
    const double d = std::norm(y - c.points[i]);
    if (d < best_dist) {
      best_dist = d;
      best = i;
    }
  }
  return c.labels[best];
}

TEST(SliceKernelTest, MatchesReferenceScanAllConstellations) {
  dsp::rng gen(42);
  std::vector<const constellation*> all;
  for (std::size_t b : {1u, 2u, 4u, 6u}) all.push_back(&wifi_constellation(b));
  for (std::size_t o : {2u, 4u, 8u, 16u}) all.push_back(&psk_constellation(o));
  for (const constellation* c : all) {
    for (int rep = 0; rep < 500; ++rep) {
      const cplx y = 1.5 * gen.complex_gaussian();
      ASSERT_EQ(c->slice(y), reference_slice(*c, y))
          << c->points.size() << " points, y=" << y;
    }
  }
}

TEST(SliceKernelTest, ExactTiesPickTheFirstPoint) {
  // Symbols equidistant from two or more points: the midpoint of every
  // adjacent 16-PSK pair, the origin (equidistant from all points), and
  // 16-QAM decision-boundary crossings. First (lowest-index) point must win,
  // exactly as in the reference scan.
  const auto& psk = psk_constellation(16);
  for (std::size_t i = 0; i < psk.points.size(); ++i) {
    const cplx mid =
        0.5 * (psk.points[i] + psk.points[(i + 1) % psk.points.size()]);
    EXPECT_EQ(psk.slice(mid), reference_slice(psk, mid)) << i;
  }
  EXPECT_EQ(psk.slice(cplx{0.0, 0.0}), reference_slice(psk, cplx{0.0, 0.0}));
  const auto& qam = wifi_constellation(4);
  for (std::size_t i = 0; i < qam.points.size(); ++i)
    for (std::size_t j = i + 1; j < qam.points.size(); ++j) {
      const cplx mid = 0.5 * (qam.points[i] + qam.points[j]);
      EXPECT_EQ(qam.slice(mid), reference_slice(qam, mid)) << i << "," << j;
    }
}

TEST(SliceKernelTest, NonFiniteSymbolReturnsFirstLabel) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  for (std::size_t o : {2u, 4u, 8u, 16u}) {
    const auto& c = psk_constellation(o);
    EXPECT_EQ(c.slice(cplx{nan, 0.0}), reference_slice(c, cplx{nan, 0.0}));
    EXPECT_EQ(c.slice(cplx{0.0, nan}), reference_slice(c, cplx{0.0, nan}));
    EXPECT_EQ(c.slice(cplx{inf, -inf}), reference_slice(c, cplx{inf, -inf}));
  }
}

TEST(DemapStreamIntoTest, BitIdenticalToPerSymbolDemap) {
  dsp::rng gen(43);
  for (std::size_t o : {2u, 4u, 8u, 16u}) {
    const auto& c = psk_constellation(o);
    cvec symbols(137);
    for (auto& s : symbols) s = gen.complex_gaussian();
    const double noise_var = 0.07;
    std::vector<double> got;
    c.demap_llr_stream_into(symbols, noise_var, got);
    ASSERT_EQ(got.size(), symbols.size() * c.bits_per_symbol);
    std::vector<double> per_symbol;
    for (std::size_t s = 0; s < symbols.size(); ++s) {
      c.demap_llr(symbols[s], noise_var, per_symbol);
      for (std::size_t b = 0; b < c.bits_per_symbol; ++b)
        ASSERT_EQ(got[s * c.bits_per_symbol + b], per_symbol[b])
            << "symbol " << s << " bit " << b;
    }
  }
}

TEST(DemapStreamIntoTest, ReusesWarmBufferAndResizes) {
  const auto& c = psk_constellation(16);
  dsp::rng gen(44);
  cvec big(64), small(8);
  for (auto& s : big) s = gen.complex_gaussian();
  for (auto& s : small) s = gen.complex_gaussian();
  std::vector<double> out;
  c.demap_llr_stream_into(big, 0.1, out);
  EXPECT_EQ(out.size(), big.size() * c.bits_per_symbol);
  c.demap_llr_stream_into(small, 0.1, out);
  EXPECT_EQ(out.size(), small.size() * c.bits_per_symbol);
  EXPECT_EQ(out, c.demap_llr_stream(small, 0.1));
}

}  // namespace
}  // namespace backfi::phy
