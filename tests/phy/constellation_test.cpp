#include "phy/constellation.h"

#include <gtest/gtest.h>

#include "dsp/rng.h"

namespace backfi::phy {
namespace {

TEST(GrayTest, EncodeDecodeRoundTrip) {
  for (std::uint32_t v = 0; v < 64; ++v) EXPECT_EQ(gray_decode(gray_encode(v)), v);
}

TEST(GrayTest, AdjacentValuesDifferInOneBit) {
  for (std::uint32_t v = 0; v + 1 < 64; ++v) {
    const std::uint32_t diff = gray_encode(v) ^ gray_encode(v + 1);
    EXPECT_EQ(diff & (diff - 1), 0u) << v;  // power of two -> single bit
  }
}

class WifiConstellationTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WifiConstellationTest, UnitMeanEnergy) {
  const auto& c = wifi_constellation(GetParam());
  EXPECT_NEAR(c.mean_energy(), 1.0, 1e-12);
}

TEST_P(WifiConstellationTest, MapDemapHardRoundTrip) {
  const auto& c = wifi_constellation(GetParam());
  dsp::rng gen(GetParam());
  const bitvec bits = gen.random_bits(c.bits_per_symbol * 100);
  const cvec symbols = c.map(bits);
  EXPECT_EQ(c.demap_hard(symbols), bits);
}

TEST_P(WifiConstellationTest, LlrSignsMatchTransmittedBits) {
  const auto& c = wifi_constellation(GetParam());
  dsp::rng gen(GetParam() + 100);
  const bitvec bits = gen.random_bits(c.bits_per_symbol * 50);
  const cvec symbols = c.map(bits);
  const auto llrs = c.demap_llr_stream(symbols, 0.01);
  ASSERT_EQ(llrs.size(), bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    // positive favours bit 0
    EXPECT_EQ(llrs[i] < 0.0, bits[i] != 0) << "bit " << i;
  }
}

TEST_P(WifiConstellationTest, NoisyLlrMajorityCorrect) {
  const auto& c = wifi_constellation(GetParam());
  dsp::rng gen(GetParam() + 200);
  const bitvec bits = gen.random_bits(c.bits_per_symbol * 500);
  cvec symbols = c.map(bits);
  const double sigma = 0.05;
  for (auto& s : symbols) s += sigma * gen.complex_gaussian();
  const auto llrs = c.demap_llr_stream(symbols, sigma * sigma);
  std::size_t wrong = 0;
  for (std::size_t i = 0; i < bits.size(); ++i)
    if ((llrs[i] < 0.0) != (bits[i] != 0)) ++wrong;
  EXPECT_LT(wrong, bits.size() / 100);
}

INSTANTIATE_TEST_SUITE_P(AllOrders, WifiConstellationTest,
                         ::testing::Values(1u, 2u, 4u, 6u));

TEST(WifiConstellationTest, BpskMapsOnRealAxis) {
  const auto& c = wifi_constellation(1);
  const bitvec bits = {0, 1};
  const cvec pts = c.map(bits);
  EXPECT_NEAR(pts[0].real(), -1.0, 1e-15);
  EXPECT_NEAR(pts[1].real(), 1.0, 1e-15);
  EXPECT_NEAR(pts[0].imag(), 0.0, 1e-15);
}

TEST(WifiConstellationTest, SixteenQamCornerPoint) {
  // Label 0b1010 -> I bits 10 -> +3, Q bits 10 -> +3 (times 1/sqrt(10)).
  const auto& c = wifi_constellation(4);
  const bitvec bits = {1, 0, 1, 0};
  const cvec pts = c.map(bits);
  const double k = 1.0 / std::sqrt(10.0);
  EXPECT_NEAR(pts[0].real(), 3.0 * k, 1e-12);
  EXPECT_NEAR(pts[0].imag(), 3.0 * k, 1e-12);
}

TEST(WifiConstellationTest, RejectsUnsupportedOrder) {
  EXPECT_THROW(wifi_constellation(3), std::invalid_argument);
}

class PskConstellationTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PskConstellationTest, PointsOnUnitCircle) {
  const auto& c = psk_constellation(GetParam());
  for (const cplx& p : c.points) EXPECT_NEAR(std::abs(p), 1.0, 1e-12);
}

TEST_P(PskConstellationTest, AdjacentPhasesAreGrayNeighbours) {
  const auto& c = psk_constellation(GetParam());
  const std::size_t order = c.points.size();
  for (std::size_t k = 0; k < order; ++k) {
    const std::uint32_t diff = c.labels[k] ^ c.labels[(k + 1) % order];
    EXPECT_EQ(diff & (diff - 1), 0u) << "phase step " << k;
  }
}

TEST_P(PskConstellationTest, MapDemapRoundTrip) {
  const auto& c = psk_constellation(GetParam());
  dsp::rng gen(GetParam() + 300);
  const bitvec bits = gen.random_bits(c.bits_per_symbol * 64);
  EXPECT_EQ(c.demap_hard(c.map(bits)), bits);
}

TEST_P(PskConstellationTest, SliceRobustToSmallPhaseError) {
  const auto& c = psk_constellation(GetParam());
  const double half_step = pi / static_cast<double>(c.points.size());
  for (std::size_t k = 0; k < c.points.size(); ++k) {
    const cplx rotated = c.points[k] * cplx{std::cos(half_step * 0.8),
                                            std::sin(half_step * 0.8)};
    EXPECT_EQ(c.slice(rotated), c.labels[k]) << "point " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(AllOrders, PskConstellationTest,
                         ::testing::Values(2u, 4u, 8u, 16u));

TEST(PskConstellationTest, RejectsUnsupportedOrder) {
  EXPECT_THROW(psk_constellation(3), std::invalid_argument);
  EXPECT_THROW(psk_constellation(32), std::invalid_argument);
}

TEST(ConstellationTest, MapRejectsMisalignedBits) {
  const auto& c = wifi_constellation(2);
  const bitvec bits(3, 1);
  EXPECT_THROW(c.map(bits), std::invalid_argument);
}

}  // namespace
}  // namespace backfi::phy
