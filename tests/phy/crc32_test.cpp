#include "phy/crc32.h"

#include <gtest/gtest.h>

#include <string>

namespace backfi::phy {
namespace {

std::span<const std::uint8_t> as_bytes(const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

TEST(Crc32Test, KnownVectorCheckString) {
  // The canonical CRC-32 check value: crc32("123456789") = 0xCBF43926.
  EXPECT_EQ(crc32(as_bytes("123456789")), 0xCBF43926u);
}

TEST(Crc32Test, EmptyInput) {
  EXPECT_EQ(crc32({}), 0x00000000u);
}

TEST(Crc32Test, BitwiseMatchesBytewise) {
  const std::string msg = "backscatter";
  const bitvec bits = bytes_to_bits(as_bytes(msg));
  EXPECT_EQ(crc32_bits(bits), crc32(as_bytes(msg)));
}

TEST(Crc32Test, AppendThenCheckPasses) {
  bitvec bits = string_to_bits("sensor data payload");
  append_crc32(bits);
  EXPECT_TRUE(check_crc32(bits));
}

TEST(Crc32Test, SingleBitFlipFailsCheck) {
  bitvec bits = string_to_bits("sensor data payload");
  append_crc32(bits);
  for (std::size_t flip : {std::size_t{0}, bits.size() / 2, bits.size() - 1}) {
    bitvec corrupted = bits;
    corrupted[flip] ^= 1u;
    EXPECT_FALSE(check_crc32(corrupted)) << "flip at " << flip;
  }
}

TEST(Crc32Test, TooShortForCrcFails) {
  const bitvec bits(16, 1);
  EXPECT_FALSE(check_crc32(bits));
}

TEST(Crc32Test, NonByteAlignedPayloadSupported) {
  bitvec bits = {1, 0, 1, 1, 0};  // 5 bits
  append_crc32(bits);
  EXPECT_TRUE(check_crc32(bits));
  bits[2] ^= 1u;
  EXPECT_FALSE(check_crc32(bits));
}

}  // namespace
}  // namespace backfi::phy
