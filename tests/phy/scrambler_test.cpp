#include "phy/scrambler.h"

#include <gtest/gtest.h>

#include "dsp/rng.h"

namespace backfi::phy {
namespace {

TEST(ScramblerTest, SelfInverse) {
  dsp::rng gen(1);
  const bitvec data = gen.random_bits(1000);
  const bitvec scrambled = scramble(data, 0x5D);
  EXPECT_EQ(scramble(scrambled, 0x5D), data);
}

TEST(ScramblerTest, Has127BitPeriod) {
  const bitvec seq = scrambler_sequence(0x7F, 3 * 127);
  for (std::size_t i = 0; i + 127 < seq.size(); ++i)
    ASSERT_EQ(seq[i], seq[i + 127]) << "period mismatch at " << i;
}

TEST(ScramblerTest, KnownStandardSequencePrefix) {
  // IEEE 802.11-2012 clause 18.3.5.5: all-ones seed produces the sequence
  // beginning 0000 1110 1111 0010 ...
  const bitvec seq = scrambler_sequence(0x7F, 16);
  const bitvec expected = {0, 0, 0, 0, 1, 1, 1, 0, 1, 1, 1, 1, 0, 0, 1, 0};
  EXPECT_EQ(seq, expected);
}

TEST(ScramblerTest, DifferentSeedsGiveShiftedSequences) {
  const bitvec a = scrambler_sequence(0x5D, 64);
  const bitvec b = scrambler_sequence(0x3A, 64);
  EXPECT_NE(a, b);
}

TEST(ScramblerTest, ScramblingRandomizesConstantInput) {
  const bitvec zeros(508, 0);
  const bitvec out = scramble(zeros, 0x5D);
  int ones = 0;
  for (auto b : out) ones += b;
  // ~50% ones expected from the m-sequence.
  EXPECT_GT(ones, 200);
  EXPECT_LT(ones, 308);
}

}  // namespace
}  // namespace backfi::phy
