// Recovery-path tests: the hardened receive chain must hold the residual
// near the noise floor under front-end faults that collapse the plain
// chain (the chain-level half of the robustness campaign's story).
#include <gtest/gtest.h>

#include "channel/awgn.h"
#include "channel/backscatter_link.h"
#include "dsp/math_util.h"
#include "dsp/vec_ops.h"
#include "fd/receive_chain.h"
#include "impair/plan.h"
#include "wifi/ppdu.h"

namespace backfi::impair {
namespace {

struct chain_scenario {
  cvec tx;
  cvec rx;
  double noise_power;
};

chain_scenario make_scenario(std::uint64_t seed) {
  dsp::rng gen(seed);
  chain_scenario s;
  s.tx = wifi::random_ppdu(600, {.rate = wifi::wifi_rate::mbps24}, seed).samples;
  const channel::link_budget budget;
  const auto ch = channel::draw_backscatter_channels(budget, 2.0, gen);
  s.rx = channel::apply_channel(s.tx, ch.h_env);
  s.noise_power = ch.noise_power;
  channel::add_awgn(s.rx, s.noise_power, gen);
  return s;
}

/// Whole-buffer residual over the thermal floor after the chain, with the
/// given plan injected at the front-end boundary.
double residual_over_noise_db(const chain_scenario& s,
                              const impairment_plan& plan,
                              fd::receive_chain_config cfg) {
  if (plan.any_front_end()) {
    cfg.front_end_hook = [&plan](std::span<cplx> samples) {
      plan.apply_front_end(samples);
    };
  }
  const auto result = fd::run_receive_chain(s.tx, s.rx, 0, 320, cfg);
  // Skip the convolution warm-up edge at the buffer head.
  const auto body = std::span(result.cleaned).subspan(64);
  return dsp::to_db(dsp::mean_power(body) / s.noise_power);
}

fd::receive_chain_config hardened_config() {
  fd::receive_chain_config cfg;
  cfg.digital.widely_linear = true;
  cfg.digital.remove_dc = true;
  cfg.track_residual_gain = true;
  return cfg;
}

TEST(RecoveryTest, HardenedChainMatchesPlainOnCleanLink) {
  const chain_scenario s = make_scenario(11);
  const impairment_plan clean;
  const double plain = residual_over_noise_db(s, clean, {});
  const double hard = residual_over_noise_db(s, clean, hardened_config());
  EXPECT_LT(hard, plain + 1.0);  // hardening must not cost a clean link
}

TEST(RecoveryTest, TrackingRecoversCfoRotatedResidual) {
  const chain_scenario s = make_scenario(12);
  impairment_plan plan;
  plan.cfo.offset_hz = 100.0;
  const double plain = residual_over_noise_db(s, plan, {});
  const double hard = residual_over_noise_db(s, plan, hardened_config());
  // The static fit goes stale as the analog residual rotates: the plain
  // chain re-grows tens of dB of SI; per-block tracking follows it down.
  EXPECT_GT(plain, 15.0);
  EXPECT_LT(hard, 6.0);
  EXPECT_GT(plain - hard, 12.0);
}

TEST(RecoveryTest, WidelyLinearStageRemovesIqImage) {
  const chain_scenario s = make_scenario(13);
  impairment_plan plan;
  plan.iq.gain_mismatch_db = 1.0;
  plan.iq.phase_skew_deg = 3.0;
  const double plain = residual_over_noise_db(s, plan, {});
  const double hard = residual_over_noise_db(s, plan, hardened_config());
  EXPECT_GT(plain, 15.0);  // conjugate image over the linear-only chain
  EXPECT_LT(hard, 6.0);
  EXPECT_GT(plain - hard, 12.0);
}

TEST(RecoveryTest, DcRemovalCleansFrontEndOffset) {
  const chain_scenario s = make_scenario(14);
  impairment_plan plan;
  plan.iq.dc_over_rms = 0.5;  // of the (tiny) post-analog residual
  fd::receive_chain_config dc_only;
  dc_only.digital.remove_dc = true;
  const double plain = residual_over_noise_db(s, plan, {});
  const double hard = residual_over_noise_db(s, plan, dc_only);
  EXPECT_LT(hard, plain - 3.0);
}

TEST(RecoveryTest, FrontEndHookRunsAfterAnalogStage) {
  // The hook must see the analog-cancelled waveform, not the raw rx: its
  // observed power is the analog residual, orders of magnitude below rx.
  const chain_scenario s = make_scenario(15);
  double hook_power = -1.0;
  fd::receive_chain_config cfg;
  cfg.front_end_hook = [&hook_power](std::span<cplx> samples) {
    hook_power = dsp::mean_power(samples);
  };
  (void)fd::run_receive_chain(s.tx, s.rx, 0, 320, cfg);
  ASSERT_GE(hook_power, 0.0);
  EXPECT_LT(hook_power, 0.01 * dsp::mean_power(s.rx));
}

}  // namespace
}  // namespace backfi::impair
