#include <gtest/gtest.h>

#include <cmath>

#include "dsp/math_util.h"
#include "dsp/rng.h"
#include "dsp/vec_ops.h"
#include "impair/plan.h"
#include "impair/rf_impairments.h"

namespace backfi::impair {
namespace {

/// Complex tone: constant-magnitude circular probe signal.
cvec make_tone(std::size_t n, double cycles_per_sample = 0.03) {
  cvec x(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = std::polar(1.0, two_pi * cycles_per_sample * static_cast<double>(i));
  return x;
}

TEST(CfoTest, RotatesByIntegratedFrequency) {
  cfo_config cfg;
  cfg.offset_hz = 1000.0;
  cvec x(64, cplx{1.0, 0.0});
  apply_cfo(cfg, x);
  // Sample n carries phase 2*pi*f*n*Ts; magnitude is untouched.
  const std::size_t n = 40;
  const double expected =
      two_pi * cfg.offset_hz * static_cast<double>(n) * sample_period_s;
  EXPECT_NEAR(std::arg(x[n]), expected, 1e-9);
  EXPECT_NEAR(std::abs(x[n]), 1.0, 1e-12);
}

TEST(CfoTest, StartSampleContinuesThePhaseRamp) {
  cfo_config cfg;
  cfg.offset_hz = 2500.0;
  cvec whole(100, cplx{1.0, 0.0});
  apply_cfo(cfg, whole);
  cvec tail(40, cplx{1.0, 0.0});
  apply_cfo(cfg, tail, 60);
  for (std::size_t i = 0; i < tail.size(); ++i)
    EXPECT_NEAR(std::abs(tail[i] - whole[60 + i]), 0.0, 1e-12);
}

TEST(PhaseNoiseTest, PreservesMagnitudeAndIsSeedDeterministic) {
  phase_noise_config cfg;
  cfg.linewidth_hz = 100.0;
  cvec a = make_tone(256), b = make_tone(256);
  dsp::rng gen_a(7), gen_b(7);
  apply_phase_noise(cfg, a, gen_a);
  apply_phase_noise(cfg, b, gen_b);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(std::abs(a[i]), 1.0, 1e-12);
    EXPECT_EQ(a[i], b[i]);
  }
}

TEST(IqImbalanceTest, ZeroConfigIsIdentity) {
  const cvec ref = make_tone(64);
  cvec x = ref;
  apply_iq_imbalance({}, x);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_EQ(x[i], ref[i]);
}

TEST(IqImbalanceTest, GainMismatchCreatesConjugateImage) {
  // A positive-frequency tone through a skewed front end leaks energy into
  // the conjugate (negative-frequency) direction: correlate the output
  // with conj(tone) — ideal hardware leaves that projection at zero.
  iq_imbalance_config cfg;
  cfg.gain_mismatch_db = 1.0;
  const cvec tone = make_tone(1024);
  cvec x = tone;
  apply_iq_imbalance(cfg, x);
  cplx image{0.0, 0.0};
  for (std::size_t i = 0; i < x.size(); ++i) image += x[i] * tone[i];
  image /= static_cast<double>(x.size());
  // 1 dB mismatch: image amplitude (g-1)/2 ~ -24.6 dB, far above zero.
  EXPECT_GT(std::abs(image), 0.02);
}

TEST(IqImbalanceTest, DcOverRmsAddsTheConfiguredOffset) {
  iq_imbalance_config cfg;
  cfg.dc_over_rms = 0.1;
  cvec x = make_tone(512);
  apply_iq_imbalance(cfg, x);
  cplx mean{0.0, 0.0};
  for (const cplx& v : x) mean += v;
  mean /= static_cast<double>(x.size());
  // Tone averages to ~0, so the mean is the injected DC: 0.1 * rms(=1).
  EXPECT_NEAR(std::abs(mean), 0.1, 0.02);
}

TEST(SaturationBurstTest, AddsHighAmplitudeBursts) {
  saturation_burst_config cfg;
  cfg.bursts_per_ms = 50.0;
  cfg.mean_duration_us = 2.0;
  cfg.amplitude_over_rms = 40.0;
  cvec x = make_tone(20000);
  dsp::rng gen(3);
  apply_saturation_bursts(cfg, x, gen);
  double peak = 0.0;
  for (const cplx& v : x) peak = std::max(peak, std::abs(v));
  EXPECT_GT(peak, 10.0);  // bursts tower over the unit tone
}

TEST(InterfererTest, RaisesPowerByRoughlyTheConfiguredRatio) {
  interferer_config cfg;
  cfg.bursts_per_ms = 1e9;  // effectively always on
  cfg.mean_duration_us = 1e9;
  cfg.power_db_over_signal = 10.0;
  cvec x = make_tone(4096);
  dsp::rng gen(4);
  apply_interferer(cfg, x, gen);
  const double gain_db = dsp::to_db(dsp::mean_power(x));
  EXPECT_GT(gain_db, 8.0);   // 1 + 10x interference ~ +10.4 dB
  EXPECT_LT(gain_db, 13.0);
}

TEST(OscillatorJitterTest, OnlyTouchesTheActiveRegion) {
  oscillator_jitter_config cfg;
  cfg.clock_ppm = 5000.0;
  cfg.phase_jitter_rad = 0.05;
  cvec x = make_tone(400);
  const cvec ref = x;
  dsp::rng gen(5);
  apply_oscillator_jitter(cfg, x, 100, 300, gen);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(x[i], ref[i]);
  for (std::size_t i = 300; i < x.size(); ++i) EXPECT_EQ(x[i], ref[i]);
  double changed = 0.0;
  for (std::size_t i = 100; i < 300; ++i) changed += std::norm(x[i] - ref[i]);
  EXPECT_GT(changed, 0.0);
}

TEST(BrownoutTest, ZeroesAContiguousRunWhenItFires) {
  brownout_config cfg;
  cfg.probability = 1.0;
  cfg.duration_us = 1.0;
  cvec x(2000, cplx{1.0, 0.0});
  dsp::rng gen(6);
  ASSERT_TRUE(apply_brownout(cfg, x, 0, x.size(), gen));
  std::size_t zeros = 0;
  for (const cplx& v : x) zeros += (v == cplx{0.0, 0.0}) ? 1 : 0;
  EXPECT_EQ(zeros, static_cast<std::size_t>(sample_rate_hz / 1e6));
}

TEST(BrownoutTest, NeverFiresAtZeroProbability) {
  brownout_config cfg;
  cfg.probability = 0.0;
  cvec x(100, cplx{1.0, 0.0});
  dsp::rng gen(7);
  EXPECT_FALSE(apply_brownout(cfg, x, 0, x.size(), gen));
}

TEST(CancellerDriftTest, LeakageRampsOnlyAfterAdaptEnd) {
  canceller_drift_config cfg;
  cfg.final_leakage_db = -20.0;
  const cvec tx = make_tone(2000);
  cvec cleaned(2000, cplx{0.0, 0.0});
  dsp::rng gen(8);
  apply_canceller_drift(cfg, tx, cleaned, 500, gen);
  EXPECT_EQ(dsp::mean_power(std::span(cleaned).first(500)), 0.0);
  const double early =
      dsp::mean_power(std::span(cleaned).subspan(500, 300));
  const double late =
      dsp::mean_power(std::span(cleaned).subspan(1700, 300));
  EXPECT_GT(late, 10.0 * early);  // amplitude grows linearly to the end
}

TEST(CancellerStageFailureTest, LeakageStartsAtConfiguredFraction) {
  canceller_stage_failure_config cfg;
  cfg.leakage_db = -20.0;
  cfg.at_frac = 0.5;
  // White probe: a tone would alias the random leakage channel's frequency
  // response into the level check.
  dsp::rng tx_gen(10);
  cvec tx(1000);
  for (cplx& v : tx) v = tx_gen.complex_gaussian();
  cvec cleaned(1000, cplx{0.0, 0.0});
  dsp::rng gen(9);
  apply_canceller_stage_failure(cfg, tx, cleaned, gen);
  EXPECT_EQ(dsp::mean_power(std::span(cleaned).first(500)), 0.0);
  const double after = dsp::mean_power(std::span(cleaned).subspan(500));
  EXPECT_NEAR(dsp::to_db(after), -20.0, 3.0);
}

TEST(PlanTest, DefaultPlanIsInert) {
  impairment_plan plan;
  EXPECT_FALSE(plan.any());
  EXPECT_FALSE(plan.any_front_end());
  cvec x = make_tone(128);
  const cvec ref = x;
  plan.apply_to_rx(x);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_EQ(x[i], ref[i]);
}

TEST(PlanTest, FrontEndSplitMatchesInjectorDomain) {
  impairment_plan antenna_only;
  antenna_only.interferer.bursts_per_ms = 1.0;
  EXPECT_TRUE(antenna_only.any());
  EXPECT_FALSE(antenna_only.any_front_end());

  impairment_plan front_end;
  front_end.cfo.offset_hz = 10.0;
  EXPECT_TRUE(front_end.any());
  EXPECT_TRUE(front_end.any_front_end());
}

TEST(PlanTest, IndependentStreamsPerInjector) {
  // Toggling one injector must not change another's random draws: the
  // brownout realization is identical with and without the interferer.
  impairment_plan a;
  a.brownout.probability = 1.0;
  a.brownout.duration_us = 1.0;
  impairment_plan b = a;
  b.interferer.bursts_per_ms = 5.0;

  cvec ra(4000, cplx{1.0, 0.0}), rb(4000, cplx{1.0, 0.0});
  a.apply_to_reflection(ra, 0, ra.size());
  b.apply_to_reflection(rb, 0, rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) EXPECT_EQ(ra[i], rb[i]);
}

TEST(PlanTest, SeverityZeroIsCleanForEveryClass) {
  for (const fault_class fault : all_fault_classes()) {
    const impairment_plan plan = plan_for(fault, 0.0, 1);
    EXPECT_FALSE(plan.any()) << fault_class_name(fault);
  }
}

TEST(PlanTest, SeverityOneActivatesEveryClass) {
  for (const fault_class fault : all_fault_classes()) {
    const impairment_plan plan = plan_for(fault, 1.0, 1);
    EXPECT_TRUE(plan.any()) << fault_class_name(fault);
  }
}

TEST(LoDriftTest, DisabledStepConsumesZeroDrawsAndHoldsPhase) {
  lo_drift_state state;
  dsp::rng gen(11);
  dsp::rng twin(11);
  EXPECT_DOUBLE_EQ(state.step(lo_drift_config{}, gen), 0.0);
  EXPECT_DOUBLE_EQ(state.phase_rad, 0.0);
  EXPECT_EQ(gen.next_u64(), twin.next_u64());  // stream untouched
}

TEST(LoDriftTest, EnabledStepWalksByExactlyOneGaussianDraw) {
  const lo_drift_config cfg{.step_std_rad = 0.25};
  ASSERT_TRUE(cfg.enabled());
  lo_drift_state state;
  dsp::rng gen(21);
  dsp::rng twin(21);
  double expected = 0.0;
  for (int k = 0; k < 5; ++k) {
    const double phase = state.step(cfg, gen);
    expected += 0.25 * twin.gaussian();  // one draw per packet, in order
    EXPECT_DOUBLE_EQ(phase, expected);
    EXPECT_DOUBLE_EQ(state.phase_rad, expected);
  }
  EXPECT_EQ(gen.next_u64(), twin.next_u64());
}

TEST(LoDriftTest, ApplyConstantPhaseRotatesEverySample) {
  cvec x = {cplx{1.0, 0.0}, cplx{0.0, 2.0}, cplx{-1.5, 0.5}};
  const cvec before = x;
  const double theta = 0.7;
  apply_constant_phase(x, theta);
  const cplx rot{std::cos(theta), std::sin(theta)};
  for (std::size_t k = 0; k < x.size(); ++k) {
    EXPECT_NEAR(x[k].real(), (before[k] * rot).real(), 1e-12);
    EXPECT_NEAR(x[k].imag(), (before[k] * rot).imag(), 1e-12);
  }

  // Zero phase is an exact no-op (early return, no rounding).
  cvec y = before;
  apply_constant_phase(y, 0.0);
  for (std::size_t k = 0; k < y.size(); ++k) EXPECT_EQ(y[k], before[k]);
}

}  // namespace
}  // namespace backfi::impair
