#include "tag/energy_model.h"

#include <gtest/gtest.h>

namespace backfi::tag {
namespace {

TEST(EnergyModelTest, ModulationProperties) {
  EXPECT_EQ(bits_per_symbol(tag_modulation::bpsk), 1u);
  EXPECT_EQ(bits_per_symbol(tag_modulation::qpsk), 2u);
  EXPECT_EQ(bits_per_symbol(tag_modulation::psk8), 3u);
  EXPECT_EQ(bits_per_symbol(tag_modulation::psk16), 4u);
  // Paper Section 5.2.1: BPSK 1 switch, QPSK 3 switches, 16-PSK 15 switches.
  EXPECT_EQ(switch_count(tag_modulation::bpsk), 1u);
  EXPECT_EQ(switch_count(tag_modulation::qpsk), 3u);
  EXPECT_EQ(switch_count(tag_modulation::psk16), 15u);
}

TEST(EnergyModelTest, ThroughputExamples) {
  // Fig. 7 throughput column: 16PSK 2/3 @ 2.5 MHz = 6.67 Mbps.
  EXPECT_NEAR(throughput_bps({tag_modulation::psk16, phy::code_rate::two_thirds,
                              2.5e6}),
              6.67e6, 0.01e6);
  // BPSK 1/2 @ 10 kHz = 5 Kbps.
  EXPECT_NEAR(throughput_bps({tag_modulation::bpsk, phy::code_rate::half, 1e4}),
              5e3, 1.0);
}

TEST(EnergyModelTest, ReferenceConfigHasUnitRepb) {
  EXPECT_NEAR(relative_energy_per_bit(
                  {tag_modulation::bpsk, phy::code_rate::half, 1e6}),
              1.0, 1e-3);
  EXPECT_NEAR(energy_per_bit_pj({tag_modulation::bpsk, phy::code_rate::half, 1e6}),
              3.15, 0.01);
}

// The full Fig. 7 table from the paper: REPB for each (modulation, rate)
// pair at each symbol switching rate. The energy model must reproduce the
// published values.
struct fig7_row {
  double symbol_rate_hz;
  // Columns: BPSK 1/2, BPSK 2/3, QPSK 1/2, QPSK 2/3, 16PSK 1/2, 16PSK 2/3.
  double repb[6];
};

constexpr fig7_row kFig7[] = {
    {1e4, {29.2162, 28.1984, 31.2517, 29.7250, 40.4117, 36.5951}},
    {1e5, {3.5651, 3.3333, 4.0287, 3.6810, 6.1151, 5.2458}},
    {5e5, {1.2850, 1.1231, 1.6089, 1.3660, 3.0665, 2.4592}},
    {1e6, {1.0000, 0.8468, 1.3064, 1.0766, 2.6855, 2.1109}},
    {2e6, {0.8575, 0.7086, 1.1552, 0.9319, 2.4949, 1.9367}},
    {2.5e6, {0.8290, 0.6810, 1.1250, 0.9030, 2.4568, 1.9019}},
};

constexpr double kFig7Throughput[][6] = {
    {5e3, 6.67e3, 10e3, 13.33e3, 20e3, 26.66e3},
    {50e3, 66.7e3, 100e3, 133.3e3, 200e3, 266.6e3},
    {0.25e6, 0.33e6, 0.5e6, 0.67e6, 1e6, 1.33e6},
    {0.5e6, 0.67e6, 1e6, 1.33e6, 2e6, 2.67e6},
    {1e6, 1.33e6, 2e6, 2.67e6, 4e6, 5.33e6},
    {1.25e6, 1.67e6, 2.5e6, 3.33e6, 5e6, 6.67e6},
};

TEST(EnergyModelTest, ReproducesFullFig7Table) {
  const auto configs = fig7_configs();
  ASSERT_EQ(configs.size(), 6u);
  for (const auto& row : kFig7) {
    for (std::size_t c = 0; c < 6; ++c) {
      tag_rate_config config = configs[c];
      config.symbol_rate_hz = row.symbol_rate_hz;
      const double repb = relative_energy_per_bit(config);
      EXPECT_NEAR(repb / row.repb[c], 1.0, 0.002)
          << modulation_name(config.modulation) << " "
          << phy::code_rate_name(config.coding) << " @ " << row.symbol_rate_hz;
    }
  }
}

TEST(EnergyModelTest, ReproducesFig7Throughputs) {
  const auto configs = fig7_configs();
  for (std::size_t r = 0; r < 6; ++r) {
    for (std::size_t c = 0; c < 6; ++c) {
      tag_rate_config config = configs[c];
      config.symbol_rate_hz = kFig7[r].symbol_rate_hz;
      // 1.5% tolerance: the paper prints rounded values (".33 Mbps" for
      // the exact 1/3 Mbps, etc.).
      EXPECT_NEAR(throughput_bps(config) / kFig7Throughput[r][c], 1.0, 0.015)
          << r << "," << c;
    }
  }
}

TEST(EnergyModelTest, PaperObservationQpskTwoThirdsBeatsHalfAt1Msps) {
  // Section 6.1: "going from (QPSK, 1/2) to (QPSK, 2/3) results in a
  // decrease in REPB".
  const double half = relative_energy_per_bit(
      {tag_modulation::qpsk, phy::code_rate::half, 1e6});
  const double two_thirds = relative_energy_per_bit(
      {tag_modulation::qpsk, phy::code_rate::two_thirds, 1e6});
  EXPECT_LT(two_thirds, half);
}

TEST(EnergyModelTest, StaticShareGrowsAtLowSymbolRates) {
  // Section 5.2.1: reducing the symbol rate increases EPB because static
  // power accrues for longer per bit.
  const auto slow = energy_breakdown_pj(
      {tag_modulation::bpsk, phy::code_rate::half, 1e4});
  const auto fast = energy_breakdown_pj(
      {tag_modulation::bpsk, phy::code_rate::half, 2.5e6});
  EXPECT_NEAR(slow.dynamic_pj, fast.dynamic_pj, 1e-9);
  EXPECT_GT(slow.static_pj, 30.0 * fast.static_pj);
  EXPECT_NEAR(slow.total_pj, slow.dynamic_pj + slow.static_pj, 1e-9);
}

TEST(EnergyModelTest, RelativeModulatorCostMatchesPaperRatios) {
  // Paper: modulator EPB ratio QPSK/BPSK = 3/2, 16PSK/BPSK = 15/4 (dynamic
  // part, same coding rate). Subtract the common base to isolate it.
  const double base = 0.137;
  const double bpsk = relative_energy_per_bit(
                          {tag_modulation::bpsk, phy::code_rate::half, 1e9}) -
                      base;  // huge rate -> static negligible
  const double qpsk = relative_energy_per_bit(
                          {tag_modulation::qpsk, phy::code_rate::half, 1e9}) -
                      base;
  const double psk16 = relative_energy_per_bit(
                           {tag_modulation::psk16, phy::code_rate::half, 1e9}) -
                       base;
  EXPECT_NEAR(qpsk / bpsk, 1.5, 0.01);
  EXPECT_NEAR(psk16 / bpsk, 15.0 / 4.0, 0.01);
}

TEST(EnergyModelTest, StandardSymbolRatesAreFig7Columns) {
  const auto rates = standard_symbol_rates();
  ASSERT_EQ(rates.size(), 6u);
  EXPECT_DOUBLE_EQ(rates.front(), 1e4);
  EXPECT_DOUBLE_EQ(rates.back(), 2.5e6);
}

}  // namespace
}  // namespace backfi::tag
