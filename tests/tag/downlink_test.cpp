#include "tag/downlink.h"

#include <gtest/gtest.h>

#include "channel/awgn.h"
#include "dsp/rng.h"

namespace backfi::tag {
namespace {

TEST(DownlinkTest, RateMatchesPaper) {
  // 50 us bits -> 20 Kbps, the paper's quoted downlink throughput.
  EXPECT_DOUBLE_EQ(downlink_rate_bps({}), 20e3);
  EXPECT_DOUBLE_EQ(downlink_rate_bps({.bit_period_us = 100}), 10e3);
}

TEST(DownlinkTest, CleanRoundTrip) {
  dsp::rng gen(1);
  const phy::bitvec bits = gen.random_bits(64);
  const cvec wave = encode_downlink(bits);
  EXPECT_EQ(decode_downlink(wave), bits);
}

TEST(DownlinkTest, EncodingIsManchesterBalanced) {
  // Every bit spends exactly half its period "on", so the mean power is
  // independent of the data.
  const phy::bitvec ones(16, 1);
  const phy::bitvec zeros(16, 0);
  const cvec w1 = encode_downlink(ones);
  const cvec w0 = encode_downlink(zeros);
  double p1 = 0.0, p0 = 0.0;
  for (const auto& v : w1) p1 += std::norm(v);
  for (const auto& v : w0) p0 += std::norm(v);
  EXPECT_NEAR(p1, p0, 1e-9);
}

TEST(DownlinkTest, SurvivesChannelScalingAndPhase) {
  dsp::rng gen(2);
  const phy::bitvec bits = gen.random_bits(40);
  cvec wave = encode_downlink(bits);
  // Arbitrary complex channel coefficient (flat fading).
  for (auto& v : wave) v *= cplx{3e-4, -2e-4};
  EXPECT_EQ(decode_downlink(wave), bits);
}

TEST(DownlinkTest, SurvivesModerateNoise) {
  dsp::rng gen(3);
  const phy::bitvec bits = gen.random_bits(100);
  cvec wave = encode_downlink(bits, {.pulse_amplitude = 1.0});
  channel::add_awgn(wave, 0.05, gen);  // ~13 dB SNR on the "on" halves
  const phy::bitvec decoded = decode_downlink(wave);
  EXPECT_EQ(phy::hamming_distance(decoded, bits), 0u);
}

TEST(DownlinkTest, PartialBitPeriodIgnored) {
  const phy::bitvec bits = {1, 0, 1};
  cvec wave = encode_downlink(bits);
  wave.resize(wave.size() - 100);  // truncate into the last bit
  const phy::bitvec decoded = decode_downlink(wave);
  EXPECT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0], 1);
  EXPECT_EQ(decoded[1], 0);
}

TEST(DownlinkTest, EmptyInput) {
  EXPECT_TRUE(encode_downlink({}).empty());
  EXPECT_TRUE(decode_downlink(cvec{}).empty());
}

}  // namespace
}  // namespace backfi::tag
