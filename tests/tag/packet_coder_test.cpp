#include "tag/packet_coder.h"

#include <gtest/gtest.h>

#include "dsp/rng.h"

namespace backfi::tag {
namespace {

phy::erasure_spec make_spec(phy::erasure_scheme scheme) {
  phy::erasure_spec spec;
  spec.scheme = scheme;
  spec.block_symbols = 4;
  spec.symbol_bytes = 8;
  spec.rs_repair_symbols = 2;
  spec.fountain_overhead = 0.5;
  spec.seed = 5;
  return spec;
}

std::vector<std::uint8_t> block_bytes(const phy::erasure_spec& spec,
                                      std::uint64_t seed) {
  dsp::rng gen(seed);
  std::vector<std::uint8_t> data(spec.block_symbols * spec.symbol_bytes);
  for (auto& b : data) b = static_cast<std::uint8_t>(gen.uniform_int(256));
  return data;
}

TEST(PacketCoderTest, RejectsDegenerateGeometry) {
  phy::erasure_spec spec = make_spec(phy::erasure_scheme::reed_solomon);
  spec.block_symbols = 0;
  EXPECT_THROW(packet_coder{spec}, std::invalid_argument);
  spec = make_spec(phy::erasure_scheme::reed_solomon);
  spec.symbol_bytes = 0;
  EXPECT_THROW(packet_coder{spec}, std::invalid_argument);
  spec = make_spec(phy::erasure_scheme::reed_solomon);
  spec.block_symbols = 250;
  spec.rs_repair_symbols = 20;  // 270 > 255 field points
  EXPECT_THROW(packet_coder{spec}, std::invalid_argument);
  spec = make_spec(phy::erasure_scheme::fountain);
  spec.soliton_delta = 1.5;
  EXPECT_THROW(packet_coder{spec}, std::invalid_argument);
}

TEST(PacketCoderTest, SchedulesExactlyTheBudgetPerBlock) {
  const phy::erasure_spec spec = make_spec(phy::erasure_scheme::reed_solomon);
  packet_coder coder(spec);
  coder.push_block(block_bytes(spec, 1));
  std::size_t produced = 0;
  while (coder.has_packet()) {
    coder.next_packet();
    ++produced;
  }
  EXPECT_EQ(produced, spec.scheduled_symbols());
  EXPECT_EQ(coder.exhausted_block(), std::optional<std::uint32_t>{0});
  EXPECT_THROW(coder.next_packet(), std::logic_error);
}

TEST(PacketCoderTest, StripesAcrossOpenBlocks) {
  const phy::erasure_spec spec = make_spec(phy::erasure_scheme::fountain);
  packet_coder coder(spec);
  coder.push_block(block_bytes(spec, 1));
  coder.push_block(block_bytes(spec, 2));
  std::vector<std::uint32_t> order;
  for (int i = 0; i < 6; ++i) order.push_back(coder.next_packet().block);
  EXPECT_EQ(order, (std::vector<std::uint32_t>{0, 1, 0, 1, 0, 1}));
}

TEST(PacketCoderTest, RepairGrantsRespectTheFieldLimit) {
  phy::erasure_spec spec = make_spec(phy::erasure_scheme::reed_solomon);
  spec.block_symbols = 250;
  spec.rs_repair_symbols = 3;  // scheduled 253 of 255
  packet_coder coder(spec);
  coder.push_block(block_bytes(spec, 3));
  EXPECT_EQ(coder.request_repair(0, 10), 2u);  // only 2 field points left
  EXPECT_EQ(coder.request_repair(0, 10), 0u);
  EXPECT_EQ(coder.stats().repair_symbols_granted, 2u);

  const phy::erasure_spec lt = make_spec(phy::erasure_scheme::fountain);
  packet_coder fountain(lt);
  fountain.push_block(block_bytes(lt, 4));
  EXPECT_EQ(fountain.request_repair(0, 1000), 1000u);  // rateless

  const phy::erasure_spec plain = make_spec(phy::erasure_scheme::none);
  packet_coder uncoded(plain);
  uncoded.push_block(block_bytes(plain, 5));
  EXPECT_EQ(uncoded.request_repair(0, 4), 0u);
}

TEST(PacketCoderTest, UncodedSchemeIsStopAndWait) {
  const phy::erasure_spec spec = make_spec(phy::erasure_scheme::none);
  packet_coder coder(spec);
  coder.push_block(block_bytes(spec, 6));
  // The same symbol repeats until acknowledged.
  EXPECT_EQ(coder.next_packet().esi, 0u);
  EXPECT_EQ(coder.next_packet().esi, 0u);
  coder.ack_symbol(0, 0);
  EXPECT_EQ(coder.next_packet().esi, 1u);
  coder.ack_symbol(0, 1);
  coder.ack_symbol(0, 2);
  EXPECT_EQ(coder.next_packet().esi, 3u);
  coder.ack_symbol(0, 3);
  EXPECT_FALSE(coder.has_packet());
  // Uncoded blocks never show up as exhausted (ARQ never gives up).
  EXPECT_FALSE(coder.exhausted_block().has_value());
}

TEST(PacketCoderTest, CompleteAndAbandonCloseBlocks) {
  const phy::erasure_spec spec = make_spec(phy::erasure_scheme::fountain);
  packet_coder coder(spec);
  coder.push_block(block_bytes(spec, 7));
  coder.push_block(block_bytes(spec, 8));
  EXPECT_EQ(coder.open_blocks(), 2u);
  coder.complete_block(0);
  EXPECT_EQ(coder.open_blocks(), 1u);
  EXPECT_EQ(coder.next_packet().block, 1u);
  coder.abandon_block(1);
  EXPECT_EQ(coder.open_blocks(), 0u);
  EXPECT_EQ(coder.stats().blocks_completed, 1u);
  EXPECT_EQ(coder.stats().blocks_abandoned, 1u);
}

TEST(PacketCoderTest, PacketsCarryTheSpecLayout) {
  const phy::erasure_spec spec = make_spec(phy::erasure_scheme::reed_solomon);
  packet_coder coder(spec);
  coder.push_block(block_bytes(spec, 9));
  const phy::coded_packet packet = coder.next_packet();
  EXPECT_EQ(packet.bits.size(), spec.packet_payload_bits());
  std::uint32_t block = 0, esi = 0;
  std::vector<std::uint8_t> symbol;
  ASSERT_TRUE(phy::unpack_coded_packet(packet.bits, spec, block, esi, symbol));
  EXPECT_EQ(block, packet.block);
  EXPECT_EQ(esi, packet.esi);
}

}  // namespace
}  // namespace backfi::tag
