#include "tag/phase_modulator.h"

#include <gtest/gtest.h>

#include "dsp/math_util.h"
#include "phy/constellation.h"

namespace backfi::tag {
namespace {

TEST(PhaseModulatorTest, SwitchCountsMatchPaper) {
  EXPECT_EQ(phase_modulator(2, 6.0).switch_count(), 1u);
  EXPECT_EQ(phase_modulator(4, 6.0).switch_count(), 3u);
  EXPECT_EQ(phase_modulator(16, 6.0).switch_count(), 15u);
}

TEST(PhaseModulatorTest, RejectsUnsupportedOrder) {
  EXPECT_THROW(phase_modulator(3, 6.0), std::invalid_argument);
  EXPECT_THROW(phase_modulator(32, 6.0), std::invalid_argument);
}

TEST(PhaseModulatorTest, ReflectionPhasesAreUniform) {
  const std::size_t order = 16;
  phase_modulator mod(order, 0.0);
  for (std::uint32_t k = 0; k < order; ++k) {
    const cplx r = mod.reflection_for_index(k);
    const double expected = two_pi * k / static_cast<double>(order);
    EXPECT_NEAR(dsp::wrap_phase(std::arg(r) - expected), 0.0, 1e-12) << k;
    EXPECT_NEAR(std::abs(r), 1.0, 1e-12);
  }
}

TEST(PhaseModulatorTest, InsertionLossScalesAmplitude) {
  phase_modulator mod(4, 6.0);
  EXPECT_NEAR(mod.reflection_amplitude(), std::pow(10.0, -6.0 / 20.0), 1e-12);
  EXPECT_NEAR(std::abs(mod.reflection_for_index(2)), mod.reflection_amplitude(),
              1e-12);
}

TEST(PhaseModulatorTest, LabelMappingMatchesPskConstellation) {
  for (std::size_t order : {2u, 4u, 8u, 16u}) {
    phase_modulator mod(order, 0.0);
    const auto& c = phy::psk_constellation(order);
    for (std::size_t k = 0; k < order; ++k) {
      const cplx r = mod.reflection_for_label(c.labels[k]);
      EXPECT_NEAR(std::abs(r - c.points[k]), 0.0, 1e-12)
          << "order " << order << " point " << k;
    }
  }
}

TEST(PhaseModulatorTest, GrayNeighbourTogglesOneTreeLevel) {
  phase_modulator mod(16, 6.0);
  mod.select(phy::gray_encode(0));
  mod.reset_toggle_count();
  // Moving to the adjacent leaf (index 1) flips only the lowest-level switch.
  mod.select(phy::gray_encode(1));
  EXPECT_EQ(mod.toggle_count(), 1u);
  // Jumping across the tree (1 -> 8+) re-routes the full path depth.
  mod.select(phy::gray_encode(9));
  EXPECT_EQ(mod.toggle_count(), 1u + 4u);
}

TEST(PhaseModulatorTest, RepeatedSymbolTogglesNothing) {
  phase_modulator mod(4, 6.0);
  mod.select(phy::gray_encode(2));
  mod.reset_toggle_count();
  mod.select(phy::gray_encode(2));
  EXPECT_EQ(mod.toggle_count(), 0u);
}

}  // namespace
}  // namespace backfi::tag
