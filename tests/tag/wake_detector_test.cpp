#include "tag/wake_detector.h"

#include <gtest/gtest.h>

#include "channel/awgn.h"
#include "dsp/rng.h"
#include "phy/prbs.h"

namespace backfi::tag {
namespace {

/// Build the reader's OOK wake waveform: 1 us on/off pulses per preamble bit.
cvec ook_waveform(const phy::bitvec& preamble, std::size_t samples_per_bit,
                  double amplitude) {
  cvec out;
  out.reserve(preamble.size() * samples_per_bit);
  for (std::uint8_t bit : preamble)
    out.insert(out.end(), samples_per_bit, bit ? cplx{amplitude, 0.0} : cplx{0.0, 0.0});
  return out;
}

TEST(WakeDetectorTest, EnvelopeBitsRecoverOokPattern) {
  const phy::bitvec preamble = phy::wake_preamble(3);
  const cvec wave = ook_waveform(preamble, 20, 1.0);
  const phy::bitvec bits = envelope_bits(wave);
  ASSERT_EQ(bits.size(), preamble.size());
  EXPECT_EQ(bits, preamble);
}

TEST(WakeDetectorTest, DetectsCleanPreamble) {
  const phy::bitvec preamble = phy::wake_preamble(7);
  cvec wave(200, cplx{0.0, 0.0});  // leading idle
  const cvec pulses = ook_waveform(preamble, 20, 1.0);
  wave.insert(wave.end(), pulses.begin(), pulses.end());

  const wake_result result = detect_wake(wave, preamble, -30.0);
  ASSERT_TRUE(result.woke);
  EXPECT_EQ(result.preamble_end_sample, wave.size());
  EXPECT_EQ(result.bit_errors, 0u);
}

TEST(WakeDetectorTest, DetectsNoisyPreamble) {
  dsp::rng gen(1);
  const phy::bitvec preamble = phy::wake_preamble(11);
  cvec wave(100, cplx{0.0, 0.0});
  const cvec pulses = ook_waveform(preamble, 20, 1.0);
  wave.insert(wave.end(), pulses.begin(), pulses.end());
  channel::add_awgn(wave, 0.02, gen);  // ~17 dB SNR on the pulses

  const wake_result result = detect_wake(wave, preamble, -30.0);
  EXPECT_TRUE(result.woke);
}

TEST(WakeDetectorTest, RespectsSensitivityGate) {
  const phy::bitvec preamble = phy::wake_preamble(5);
  const cvec wave = ook_waveform(preamble, 20, 1.0);
  // Incident power below the -50 dBm sensitivity: the detector never wakes.
  const wake_result result = detect_wake(wave, preamble, -60.0);
  EXPECT_FALSE(result.woke);
}

TEST(WakeDetectorTest, DoesNotWakeOnWrongPreamble) {
  const phy::bitvec mine = phy::wake_preamble(2);
  const phy::bitvec other = phy::wake_preamble(9);
  ASSERT_NE(mine, other);
  const cvec wave = ook_waveform(other, 20, 1.0);
  const wake_result result = detect_wake(wave, mine, -30.0);
  EXPECT_FALSE(result.woke);
}

TEST(WakeDetectorTest, DoesNotWakeOnNoise) {
  dsp::rng gen(2);
  cvec noise(2000);
  for (auto& v : noise) v = 0.3 * gen.complex_gaussian();
  const phy::bitvec preamble = phy::wake_preamble(4);
  const wake_result result = detect_wake(noise, preamble, -30.0);
  EXPECT_FALSE(result.woke);
}

TEST(WakeDetectorTest, ToleratesOneBitError) {
  const phy::bitvec preamble = phy::wake_preamble(6);
  phy::bitvec corrupted = preamble;
  corrupted[8] ^= 1u;
  const cvec wave = ook_waveform(corrupted, 20, 1.0);
  const wake_result result = detect_wake(wave, preamble, -30.0);
  ASSERT_TRUE(result.woke);
  EXPECT_EQ(result.bit_errors, 1u);
}

}  // namespace
}  // namespace backfi::tag
