#include "tag/tag_device.h"

#include <gtest/gtest.h>

#include "dsp/rng.h"
#include "phy/constellation.h"
#include "phy/crc32.h"

namespace backfi::tag {
namespace {

tag_config default_config() {
  tag_config cfg;
  cfg.id = 1;
  cfg.rate = {tag_modulation::qpsk, phy::code_rate::half, 1e6};
  return cfg;
}

TEST(TagDeviceTest, RejectsNonDividingSymbolRate) {
  tag_config cfg = default_config();
  cfg.rate.symbol_rate_hz = 3e6;  // 20e6/3e6 not integer
  EXPECT_THROW(tag_device{cfg}, std::invalid_argument);
}

TEST(TagDeviceTest, RejectsThreeQuarterRate) {
  tag_config cfg = default_config();
  cfg.rate.coding = phy::code_rate::three_quarters;
  EXPECT_THROW(tag_device{cfg}, std::invalid_argument);
}

TEST(TagDeviceTest, SamplesPerSymbolForStandardRates) {
  const std::size_t expected[] = {2000, 200, 40, 20, 10, 8};
  std::size_t i = 0;
  for (double rate : standard_symbol_rates()) {
    tag_config cfg = default_config();
    cfg.rate.symbol_rate_hz = rate;
    EXPECT_EQ(tag_device(cfg).samples_per_symbol(), expected[i]) << rate;
    ++i;
  }
}

TEST(TagDeviceTest, TimelineMatchesPaperFigure4) {
  const tag_device dev(default_config());
  dsp::rng gen(1);
  const auto payload = gen.random_bits(200);
  const std::size_t origin = 320;  // wake fired 16 us into the timeline
  const auto tx = dev.backscatter(payload, 80000, origin);

  EXPECT_EQ(tx.silent_start, origin);
  EXPECT_EQ(tx.preamble_start, origin + 16 * 20);      // 16 us silent
  EXPECT_EQ(tx.sync_start, tx.preamble_start + 32 * 20);  // 32 us preamble
  EXPECT_EQ(tx.data_start, tx.sync_start + 16 * dev.samples_per_symbol());
}

TEST(TagDeviceTest, SilentPeriodReflectsNothing) {
  const tag_device dev(default_config());
  dsp::rng gen(2);
  const auto tx = dev.backscatter(gen.random_bits(100), 80000, 400);
  for (std::size_t n = 0; n < tx.preamble_start; ++n)
    EXPECT_EQ(tx.reflection[n], cplx(0.0, 0.0)) << n;
}

TEST(TagDeviceTest, PreambleIsConstantPhase) {
  const tag_device dev(default_config());
  dsp::rng gen(3);
  const auto tx = dev.backscatter(gen.random_bits(100), 80000, 400);
  const cplx first = tx.reflection[tx.preamble_start];
  EXPECT_GT(std::abs(first), 0.0);
  for (std::size_t n = tx.preamble_start; n < tx.sync_start; ++n)
    EXPECT_EQ(tx.reflection[n], first) << n;
}

TEST(TagDeviceTest, ReflectionAmplitudeMatchesInsertionLoss) {
  tag_config cfg = default_config();
  cfg.insertion_loss_db = 6.0;
  const tag_device dev(cfg);
  dsp::rng gen(4);
  const auto tx = dev.backscatter(gen.random_bits(64), 80000, 0);
  for (std::size_t n = tx.data_start; n < tx.data_end; ++n)
    EXPECT_NEAR(std::abs(tx.reflection[n]), std::pow(10.0, -6.0 / 20.0), 1e-12);
}

TEST(TagDeviceTest, PayloadSymbolsPerModulationAndRate) {
  // 100 payload bits + 32 CRC = 132 info; rate 1/2 -> 2*(132+6) = 276 coded.
  tag_config cfg = default_config();
  cfg.rate.modulation = tag_modulation::qpsk;
  EXPECT_EQ(tag_device(cfg).payload_symbols(100), 138u);  // 276/2
  cfg.rate.modulation = tag_modulation::psk16;
  EXPECT_EQ(tag_device(cfg).payload_symbols(100), 69u);  // 276/4
  cfg.rate.coding = phy::code_rate::two_thirds;
  // 2/3: coded = 207 -> ceil(207/4) = 52.
  EXPECT_EQ(tag_device(cfg).payload_symbols(100), 52u);
}

TEST(TagDeviceTest, SymbolsArePiecewiseConstantPskPoints) {
  const tag_device dev(default_config());
  dsp::rng gen(5);
  const auto tx = dev.backscatter(gen.random_bits(80), 80000, 0);
  const auto& c = phy::psk_constellation(4);
  const double amp = std::pow(10.0, -default_config().insertion_loss_db / 20.0);
  for (std::size_t s = 0; s < tx.n_payload_symbols; ++s) {
    const std::size_t start = tx.data_start + s * tx.samples_per_symbol;
    const cplx value = tx.reflection[start];
    // Constant across the symbol.
    for (std::size_t n = start; n < start + tx.samples_per_symbol; ++n)
      ASSERT_EQ(tx.reflection[n], value);
    // On the scaled PSK circle.
    bool found = false;
    for (const cplx& p : c.points)
      if (std::abs(value - amp * p) < 1e-9) found = true;
    EXPECT_TRUE(found) << "symbol " << s;
  }
}

TEST(TagDeviceTest, InfoBitsCarryValidCrc) {
  const tag_device dev(default_config());
  dsp::rng gen(6);
  const auto payload = gen.random_bits(128);
  const auto tx = dev.backscatter(payload, 80000, 0);
  EXPECT_EQ(tx.info_bits.size(), payload.size() + 32);
  EXPECT_TRUE(phy::check_crc32(tx.info_bits));
}

TEST(TagDeviceTest, TruncatesWhenExcitationEnds) {
  const tag_device dev(default_config());
  dsp::rng gen(7);
  // Room for the protocol overhead but only a few payload symbols.
  const std::size_t total = 320 + 320 + 640 + 16 * 20 + 5 * 20 + 7;
  const auto tx = dev.backscatter(gen.random_bits(500), total, 320);
  EXPECT_EQ(tx.n_payload_symbols, 5u);
  EXPECT_LE(tx.data_end, total);
}

TEST(TagDeviceTest, EnergyAccountingUsesModel) {
  const tag_device dev(default_config());
  dsp::rng gen(8);
  const auto payload = gen.random_bits(100);
  const auto tx = dev.backscatter(payload, 80000, 0);
  const double expected =
      energy_per_bit_pj(default_config().rate) * (100.0 + 32.0);
  EXPECT_NEAR(tx.energy_pj, expected, 1e-9);
  EXPECT_GT(tx.switch_toggles, 0u);
}

TEST(TagDeviceTest, SyncLabelsDeterministicPerId) {
  tag_config a = default_config();
  const auto la = tag_device(a).sync_labels();
  const auto lb = tag_device(a).sync_labels();
  EXPECT_EQ(la, lb);
  a.id = 99;
  const auto lc = tag_device(a).sync_labels();
  EXPECT_NE(la, lc);
}

}  // namespace
}  // namespace backfi::tag
