#include "wifi/preamble.h"

#include <gtest/gtest.h>

#include "dsp/correlation.h"
#include "dsp/vec_ops.h"
#include "wifi/ofdm.h"

namespace backfi::wifi {
namespace {

TEST(PreambleTest, FieldLengths) {
  EXPECT_EQ(short_training_field().size(), stf_samples);
  EXPECT_EQ(long_training_field().size(), ltf_samples);
  EXPECT_EQ(legacy_preamble().size(), preamble_samples);
  EXPECT_EQ(ltf_time_symbol().size(), fft_size);
}

TEST(PreambleTest, StfIs16SamplePeriodic) {
  const cvec& stf = short_training_field();
  for (std::size_t i = 0; i + 16 < stf.size(); ++i)
    EXPECT_NEAR(std::abs(stf[i] - stf[i + 16]), 0.0, 1e-12) << i;
}

TEST(PreambleTest, LtfGuardIsCopyOfSymbolTail) {
  const cvec& ltf = long_training_field();
  // Guard (first 32) == last 32 samples of the 64-sample period.
  for (std::size_t i = 0; i < 32; ++i)
    EXPECT_NEAR(std::abs(ltf[i] - ltf[i + 64]), 0.0, 1e-12) << i;
  // The two periods are identical.
  for (std::size_t i = 0; i < 64; ++i)
    EXPECT_NEAR(std::abs(ltf[32 + i] - ltf[96 + i]), 0.0, 1e-12) << i;
}

TEST(PreambleTest, MeanPowerNearUnity) {
  EXPECT_NEAR(dsp::mean_power(short_training_field()), 1.0, 0.05);
  EXPECT_NEAR(dsp::mean_power(long_training_field()), 1.0, 0.05);
}

TEST(PreambleTest, LtfSequenceValuesAreBipolarWithDcNull) {
  const auto seq = ltf_frequency_sequence();
  ASSERT_EQ(seq.size(), 53u);
  EXPECT_DOUBLE_EQ(ltf_value(0), 0.0);
  int nonzero = 0;
  for (int k = -26; k <= 26; ++k) {
    const double v = ltf_value(k);
    if (k == 0) continue;
    EXPECT_NEAR(std::abs(v), 1.0, 1e-15) << k;
    ++nonzero;
  }
  EXPECT_EQ(nonzero, 52);
}

TEST(PreambleTest, StfAutocorrelationMetricIsHigh) {
  const cvec& stf = short_training_field();
  const dsp::rvec metric = dsp::delayed_autocorrelation(stf, 16);
  for (double m : metric) EXPECT_GT(m, 0.99);
}

TEST(PreambleTest, LtfSymbolSelfCorrelationSharp) {
  const cvec pre = legacy_preamble();
  const dsp::rvec metric = dsp::normalized_correlation(pre, ltf_time_symbol());
  // Peaks at the two LTF symbol starts: 160+32 = 192 and 256.
  EXPECT_GT(metric[192], 0.99);
  EXPECT_GT(metric[256], 0.99);
  // STF region should not correlate as strongly.
  for (std::size_t i = 0; i < 100; ++i) EXPECT_LT(metric[i], 0.9) << i;
}

}  // namespace
}  // namespace backfi::wifi
