#include "wifi/ofdm.h"

#include <gtest/gtest.h>

#include <set>

#include "dsp/rng.h"
#include "dsp/vec_ops.h"
#include "phy/constellation.h"

namespace backfi::wifi {
namespace {

TEST(OfdmTest, SubcarrierLayoutDisjointAndComplete) {
  std::set<int> all;
  for (int sc : data_subcarrier_indices()) all.insert(sc);
  for (int sc : pilot_subcarrier_indices()) all.insert(sc);
  EXPECT_EQ(all.size(), 52u);
  EXPECT_EQ(all.count(0), 0u);  // DC unused
  for (int sc : all) {
    EXPECT_GE(sc, -26);
    EXPECT_LE(sc, 26);
  }
}

TEST(OfdmTest, SubcarrierToBinWrapsNegatives) {
  EXPECT_EQ(subcarrier_to_bin(0), 0u);
  EXPECT_EQ(subcarrier_to_bin(1), 1u);
  EXPECT_EQ(subcarrier_to_bin(-1), 63u);
  EXPECT_EQ(subcarrier_to_bin(-26), 38u);
  EXPECT_EQ(subcarrier_to_bin(26), 26u);
}

TEST(OfdmTest, PilotPolarityMatchesStandardPrefix) {
  // Clause 17.3.5.10: sequence begins +1 +1 +1 +1 -1 -1 -1 +1 ...
  const double expected[] = {1, 1, 1, 1, -1, -1, -1, 1, -1, -1, -1, -1, 1, 1, -1, 1};
  for (std::size_t i = 0; i < 16; ++i)
    EXPECT_DOUBLE_EQ(pilot_polarity(i), expected[i]) << i;
}

TEST(OfdmTest, PilotPolarityIs127Periodic) {
  for (std::size_t i = 0; i < 50; ++i)
    EXPECT_DOUBLE_EQ(pilot_polarity(i), pilot_polarity(i + 127));
}

TEST(OfdmTest, SymbolHasCorrectSizeAndCyclicPrefix) {
  dsp::rng gen(1);
  const auto& c = phy::wifi_constellation(2);
  const cvec points = c.map(gen.random_bits(96));
  const cvec symbol = modulate_symbol(points, 3);
  ASSERT_EQ(symbol.size(), symbol_samples);
  // CP = last 16 samples of the useful part.
  for (std::size_t i = 0; i < cyclic_prefix; ++i)
    EXPECT_NEAR(std::abs(symbol[i] - symbol[i + fft_size]), 0.0, 1e-12) << i;
}

TEST(OfdmTest, SymbolMeanPowerNearUnity) {
  dsp::rng gen(2);
  const auto& c = phy::wifi_constellation(4);
  double total = 0.0;
  const int n_sym = 50;
  for (int s = 0; s < n_sym; ++s) {
    const cvec points = c.map(gen.random_bits(192));
    total += dsp::mean_power(modulate_symbol(points, s));
  }
  EXPECT_NEAR(total / n_sym, 1.0, 0.1);
}

TEST(OfdmTest, ModulateDemodulateRoundTrip) {
  dsp::rng gen(3);
  const auto& c = phy::wifi_constellation(6);
  const cvec points = c.map(gen.random_bits(288));
  const std::size_t sym_idx = 7;
  const cvec symbol = modulate_symbol(points, sym_idx);
  const auto demod = demodulate_symbol(symbol);
  for (std::size_t i = 0; i < n_data_subcarriers; ++i)
    EXPECT_NEAR(std::abs(demod.data[i] / tx_scale() - points[i]), 0.0, 1e-9) << i;
  // Pilots carry the polarity-scaled base values.
  const double pol = pilot_polarity(sym_idx);
  for (std::size_t i = 0; i < n_pilot_subcarriers; ++i)
    EXPECT_NEAR(std::abs(demod.pilots[i] / tx_scale() - pilot_base_values()[i] * pol),
                0.0, 1e-9)
        << i;
}

TEST(OfdmTest, ModulateRejectsWrongPointCount) {
  const cvec too_few(47, cplx{1.0, 0.0});
  EXPECT_THROW(modulate_symbol(too_few, 0), std::invalid_argument);
}

TEST(OfdmTest, DemodulateRejectsWrongSampleCount) {
  const cvec wrong(79, cplx{0.0, 0.0});
  EXPECT_THROW(demodulate_symbol(wrong), std::invalid_argument);
}

}  // namespace
}  // namespace backfi::wifi
