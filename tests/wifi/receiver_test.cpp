#include "wifi/receiver.h"

#include <gtest/gtest.h>

#include "dsp/fir.h"
#include "dsp/math_util.h"
#include "dsp/rng.h"
#include "wifi/ofdm.h"
#include "wifi/ppdu.h"
#include "wifi/preamble.h"

namespace backfi::wifi {
namespace {

std::vector<std::uint8_t> random_psdu(std::size_t n, std::uint64_t seed) {
  dsp::rng gen(seed);
  std::vector<std::uint8_t> psdu(n);
  for (auto& b : psdu) b = static_cast<std::uint8_t>(gen.uniform_int(256));
  return psdu;
}

cvec with_padding_and_noise(const cvec& signal, double noise_sigma,
                            std::size_t lead, std::uint64_t seed) {
  dsp::rng gen(seed);
  cvec out(lead, cplx{0.0, 0.0});
  out.insert(out.end(), signal.begin(), signal.end());
  out.insert(out.end(), 100, cplx{0.0, 0.0});
  if (noise_sigma > 0.0)
    for (auto& v : out) v += noise_sigma * gen.complex_gaussian();
  return out;
}

class ReceiverRateTest : public ::testing::TestWithParam<wifi_rate> {};

TEST_P(ReceiverRateTest, CleanLoopbackDecodesExactly) {
  const auto psdu = random_psdu(200, 1);
  const tx_ppdu ppdu = transmit(psdu, {.rate = GetParam()});
  const cvec rx_samples = with_padding_and_noise(ppdu.samples, 1e-5, 50, 2);

  const rx_result result = receive(rx_samples);
  ASSERT_TRUE(result.detected);
  ASSERT_TRUE(result.synchronized);
  ASSERT_TRUE(result.signal_valid);
  EXPECT_EQ(result.rate, GetParam());
  EXPECT_EQ(result.length_bytes, psdu.size());
  ASSERT_TRUE(result.psdu_complete);
  EXPECT_EQ(result.psdu, psdu);
  EXPECT_GT(result.snr_db, 40.0);
  EXPECT_LT(result.evm_rms, 0.05);
}

TEST_P(ReceiverRateTest, ModerateNoiseLoopback) {
  // 20 dB SNR: all rates should decode a short packet.
  const auto psdu = random_psdu(100, 3);
  const tx_ppdu ppdu = transmit(psdu, {.rate = GetParam()});
  const double sigma = dsp::db_to_amplitude(-20.0);
  const cvec rx_samples = with_padding_and_noise(ppdu.samples, sigma, 200, 4);

  const rx_result result = receive(rx_samples);
  ASSERT_TRUE(result.psdu_complete);
  EXPECT_EQ(result.psdu, psdu);
  EXPECT_NEAR(result.snr_db, 20.0, 3.0);
}

TEST_P(ReceiverRateTest, MultipathChannelLoopback) {
  // Two-tap channel with 25 dB SNR; the one-tap equalizer handles it since
  // the delay spread is inside the cyclic prefix.
  const auto psdu = random_psdu(150, 5);
  const tx_ppdu ppdu = transmit(psdu, {.rate = GetParam()});
  const cvec taps = {{0.9, 0.1}, {0.0, 0.0}, {0.25, -0.15}};
  const cvec faded = dsp::convolve_same(ppdu.samples, taps);
  const double sigma = dsp::db_to_amplitude(-25.0);
  const cvec rx_samples = with_padding_and_noise(faded, sigma, 120, 6);

  const rx_result result = receive(rx_samples);
  ASSERT_TRUE(result.psdu_complete) << params_for(GetParam()).name;
  EXPECT_EQ(result.psdu, psdu);
}

INSTANTIATE_TEST_SUITE_P(AllRates, ReceiverRateTest,
                         ::testing::Values(wifi_rate::mbps6, wifi_rate::mbps9,
                                           wifi_rate::mbps12, wifi_rate::mbps18,
                                           wifi_rate::mbps24, wifi_rate::mbps36,
                                           wifi_rate::mbps48, wifi_rate::mbps54));

TEST(ReceiverTest, NoPacketInPureNoise) {
  dsp::rng gen(7);
  cvec noise(4000);
  for (auto& v : noise) v = gen.complex_gaussian();
  const rx_result result = receive(noise);
  EXPECT_FALSE(result.detected);
}

TEST(ReceiverTest, CfoIsEstimatedAndCorrected) {
  const auto psdu = random_psdu(120, 8);
  const tx_ppdu ppdu = transmit(psdu, {.rate = wifi_rate::mbps24});
  // Apply ~80 kHz CFO (about half a subcarrier spacing is the tolerance;
  // 802.11 allows +-40 ppm total which is ~200 kHz at 2.4 GHz, but coarse
  // correction from the STF handles the bulk).
  const double cfo_hz = 80e3;
  const double omega = two_pi * cfo_hz / sample_rate_hz;
  cvec shifted = ppdu.samples;
  for (std::size_t n = 0; n < shifted.size(); ++n)
    shifted[n] *= dsp::phasor(omega * static_cast<double>(n));
  const cvec rx_samples = with_padding_and_noise(shifted, 1e-4, 80, 9);

  const rx_result result = receive(rx_samples);
  ASSERT_TRUE(result.psdu_complete);
  EXPECT_EQ(result.psdu, psdu);
  EXPECT_NEAR(result.cfo_hz, cfo_hz, 5e3);
}

TEST(ReceiverTest, TruncatedPacketReportsIncomplete) {
  const auto psdu = random_psdu(400, 10);
  const tx_ppdu ppdu = transmit(psdu, {.rate = wifi_rate::mbps12});
  const cvec truncated(ppdu.samples.begin(),
                       ppdu.samples.begin() + ppdu.samples.size() / 2);
  const cvec rx_samples = with_padding_and_noise(truncated, 1e-4, 30, 11);

  const rx_result result = receive(rx_samples);
  EXPECT_TRUE(result.detected);
  EXPECT_TRUE(result.signal_valid);
  EXPECT_FALSE(result.psdu_complete);
}

TEST(ReceiverTest, SnrEstimateTracksInjectedSnr) {
  const auto psdu = random_psdu(80, 12);
  const tx_ppdu ppdu = transmit(psdu, {.rate = wifi_rate::mbps6});
  for (double snr_db : {10.0, 20.0, 30.0}) {
    const double sigma = dsp::db_to_amplitude(-snr_db / 2.0 * 2.0 / 2.0) *
                         std::pow(10.0, -snr_db / 20.0) /
                         std::pow(10.0, -snr_db / 20.0);  // keep explicit below
    (void)sigma;
    const double noise_amp = std::pow(10.0, -snr_db / 20.0);
    const cvec rx_samples = with_padding_and_noise(ppdu.samples, noise_amp, 60,
                                                   static_cast<std::uint64_t>(snr_db));
    const rx_result result = receive(rx_samples);
    ASSERT_TRUE(result.detected);
    EXPECT_NEAR(result.snr_db, snr_db, 3.0) << snr_db;
  }
}

TEST(ReceiverTest, EvmGrowsWithNoise) {
  const auto psdu = random_psdu(100, 13);
  const tx_ppdu ppdu = transmit(psdu, {.rate = wifi_rate::mbps24});
  double prev_evm = 0.0;
  for (double snr_db : {35.0, 25.0, 15.0}) {
    const double noise_amp = std::pow(10.0, -snr_db / 20.0);
    const cvec rx_samples = with_padding_and_noise(ppdu.samples, noise_amp, 40,
                                                   static_cast<std::uint64_t>(snr_db) + 77);
    const rx_result result = receive(rx_samples);
    ASSERT_TRUE(result.synchronized);
    EXPECT_GT(result.evm_rms, prev_evm);
    prev_evm = result.evm_rms;
  }
}

TEST(ReceiverTest, DetectsPacketAfterLongIdlePeriod) {
  const auto psdu = random_psdu(60, 14);
  const tx_ppdu ppdu = transmit(psdu, {});
  const cvec rx_samples = with_padding_and_noise(ppdu.samples, 1e-3, 5000, 15);
  const rx_result result = receive(rx_samples);
  ASSERT_TRUE(result.psdu_complete);
  EXPECT_EQ(result.psdu, psdu);
  EXPECT_NEAR(static_cast<double>(result.ltf_start), 5000.0 + 192.0, 2.0);
}

}  // namespace
}  // namespace backfi::wifi
