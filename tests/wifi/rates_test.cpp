#include "wifi/rates.h"

#include <gtest/gtest.h>

namespace backfi::wifi {
namespace {

TEST(RatesTest, TableIsConsistent) {
  for (const auto& p : all_rates()) {
    EXPECT_EQ(p.n_cbps, 48 * p.n_bpsc) << p.name;
    EXPECT_NEAR(static_cast<double>(p.n_dbps),
                p.n_cbps * phy::code_rate_value(p.coding), 1e-9)
        << p.name;
    // Rate in Mbps = n_dbps per 4 us symbol.
    EXPECT_NEAR(p.mbps, static_cast<double>(p.n_dbps) / 4.0, 1e-9) << p.name;
  }
}

TEST(RatesTest, AllEightRatesPresentAscending) {
  const auto rates = all_rates();
  ASSERT_EQ(rates.size(), 8u);
  for (std::size_t i = 1; i < rates.size(); ++i)
    EXPECT_GT(rates[i].mbps, rates[i - 1].mbps);
}

TEST(RatesTest, SignalBitsRoundTrip) {
  for (const auto& p : all_rates()) {
    const rate_params* found = params_for_signal_bits(p.signal_bits);
    ASSERT_NE(found, nullptr) << p.name;
    EXPECT_EQ(found->rate, p.rate);
  }
  EXPECT_EQ(params_for_signal_bits(0b0000), nullptr);
}

TEST(RatesTest, KnownSignalBitValues) {
  EXPECT_EQ(params_for(wifi_rate::mbps6).signal_bits, 0b1101);
  EXPECT_EQ(params_for(wifi_rate::mbps54).signal_bits, 0b0011);
}

TEST(RatesTest, DataSymbolCountExamples) {
  // 100 bytes at 24 Mbps: (16 + 800 + 6)/96 = 8.56 -> 9 symbols.
  EXPECT_EQ(data_symbol_count(100, wifi_rate::mbps24), 9u);
  // 1 byte at 6 Mbps: (16 + 8 + 6)/24 = 1.25 -> 2 symbols.
  EXPECT_EQ(data_symbol_count(1, wifi_rate::mbps6), 2u);
  // Exact fit: (16 + 8*25 + 6) = 222... at 54 Mbps 222/216 -> 2 symbols.
  EXPECT_EQ(data_symbol_count(25, wifi_rate::mbps54), 2u);
}

TEST(RatesTest, SymbolCountMonotonicInLength) {
  for (const auto& p : all_rates()) {
    std::size_t prev = 0;
    for (std::size_t len = 1; len < 200; len += 7) {
      const std::size_t n = data_symbol_count(len, p.rate);
      EXPECT_GE(n, prev) << p.name;
      prev = n;
    }
  }
}

}  // namespace
}  // namespace backfi::wifi
