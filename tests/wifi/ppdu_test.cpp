#include "wifi/ppdu.h"

#include <gtest/gtest.h>

#include "dsp/vec_ops.h"
#include "wifi/ofdm.h"
#include "wifi/preamble.h"

namespace backfi::wifi {
namespace {

TEST(PpduTest, SignalInfoBitsLayout) {
  const auto bits = signal_info_bits(wifi_rate::mbps6, 100);
  ASSERT_EQ(bits.size(), 18u);
  // RATE for 6 Mbps = 1101.
  EXPECT_EQ(bits[0], 1);
  EXPECT_EQ(bits[1], 1);
  EXPECT_EQ(bits[2], 0);
  EXPECT_EQ(bits[3], 1);
  EXPECT_EQ(bits[4], 0);  // reserved
  // LENGTH = 100 = 0b000001100100, LSB first: 0,0,1,0,0,1,1,0,0,0,0,0
  const int expected_len[] = {0, 0, 1, 0, 0, 1, 1, 0, 0, 0, 0, 0};
  for (int i = 0; i < 12; ++i) EXPECT_EQ(bits[5 + i], expected_len[i]) << i;
  // Even parity over all 18 bits.
  int ones = 0;
  for (auto b : bits) ones += b;
  EXPECT_EQ(ones % 2, 0);
}

TEST(PpduTest, SignalInfoBitsRejectsBadLength) {
  EXPECT_THROW(signal_info_bits(wifi_rate::mbps6, 0), std::invalid_argument);
  EXPECT_THROW(signal_info_bits(wifi_rate::mbps6, 4096), std::invalid_argument);
}

TEST(PpduTest, SignalSymbolIs80Samples) {
  EXPECT_EQ(signal_symbol(wifi_rate::mbps24, 64).size(), symbol_samples);
}

TEST(PpduTest, TransmitProducesExpectedLength) {
  for (const auto& p : all_rates()) {
    const std::size_t len = 123;
    const tx_ppdu ppdu = random_ppdu(len, {.rate = p.rate}, 42);
    EXPECT_EQ(ppdu.samples.size(), ppdu_length_samples(len, p.rate)) << p.name;
    EXPECT_EQ(ppdu.n_data_symbols, data_symbol_count(len, p.rate)) << p.name;
    EXPECT_EQ(ppdu.data_start, preamble_samples + symbol_samples) << p.name;
  }
}

TEST(PpduTest, TransmitStartsWithLegacyPreamble) {
  const tx_ppdu ppdu = random_ppdu(50, {}, 7);
  const cvec pre = legacy_preamble();
  for (std::size_t i = 0; i < pre.size(); ++i)
    EXPECT_NEAR(std::abs(ppdu.samples[i] - pre[i]), 0.0, 1e-12) << i;
}

TEST(PpduTest, MeanPowerNearUnity) {
  const tx_ppdu ppdu = random_ppdu(500, {.rate = wifi_rate::mbps54}, 9);
  EXPECT_NEAR(dsp::mean_power(ppdu.samples), 1.0, 0.1);
}

TEST(PpduTest, TransmitRejectsBadPsduSize) {
  const std::vector<std::uint8_t> empty;
  EXPECT_THROW(transmit(empty), std::invalid_argument);
  const std::vector<std::uint8_t> huge(5000, 0);
  EXPECT_THROW(transmit(huge), std::invalid_argument);
}

TEST(PpduTest, DifferentPayloadsGiveDifferentWaveforms) {
  const tx_ppdu a = random_ppdu(100, {}, 1);
  const tx_ppdu b = random_ppdu(100, {}, 2);
  double diff = 0.0;
  for (std::size_t i = a.data_start; i < a.samples.size(); ++i)
    diff += std::abs(a.samples[i] - b.samples[i]);
  EXPECT_GT(diff, 1.0);
}

}  // namespace
}  // namespace backfi::wifi
