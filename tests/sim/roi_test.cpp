// Region-of-interest receive chain (ISSUE 10): the chain computes the ADC
// quantization, digital cancellation and residual-gain application only
// over silent_window ∪ roi, and everything the contract allows reading —
// adaptation, depths, residual power, the saturation flag, every in-union
// sample, the decoded bit-stream — is bit-identical to the full sweep.
// These tests pin the equivalence at the chain level (window shapes around
// the decoder span), at the session level (ROI on vs off, including a
// retry-widened sync under a tight ROI), on the streaming 32-packet drift
// capture vs the full-capture batch reference, and across 1/2/4/8-thread
// Monte-Carlo pools (PER + deterministic telemetry digest).
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>

#include "channel/awgn.h"
#include "channel/backscatter_link.h"
#include "fd/receive_chain.h"
#include "obs/collector.h"
#include "obs/export.h"
#include "reader/decoder.h"
#include "reader/stream_session.h"
#include "sim/backscatter_sim.h"
#include "sim/parallel.h"
#include "sim/stream_sim.h"
#include "wifi/ppdu.h"

namespace backfi::sim {
namespace {

// --- Chain-level fixtures (the fd receive_chain_test idiom) ---

struct chain_scenario {
  cvec tx;
  cvec rx;
};

chain_scenario make_chain_scenario(std::uint64_t seed) {
  dsp::rng gen(seed);
  chain_scenario s;
  s.tx = wifi::random_ppdu(300, {.rate = wifi::wifi_rate::mbps24}, seed).samples;
  const channel::link_budget budget;
  const auto ch = channel::draw_backscatter_channels(budget, 2.0, gen);
  s.rx = channel::apply_channel(s.tx, ch.h_env);
  channel::add_awgn(s.rx, ch.noise_power, gen);
  return s;
}

constexpr std::size_t kSilentBegin = 0;
constexpr std::size_t kSilentEnd = 320;

void expect_scalar_results_equal(const fd::receive_chain_result& a,
                                 const fd::receive_chain_result& b,
                                 const char* what) {
  EXPECT_EQ(a.analog_depth_db, b.analog_depth_db) << what;
  EXPECT_EQ(a.total_depth_db, b.total_depth_db) << what;
  EXPECT_EQ(a.residual_power, b.residual_power) << what;
  EXPECT_EQ(a.adc_saturated, b.adc_saturated) << what;
  EXPECT_EQ(a.cancellation_bypassed, b.cancellation_bypassed) << what;
}

// In-union samples must match the full sweep bit for bit; samples outside
// the union are stale by contract and deliberately not compared.
void expect_union_samples_equal(const cvec& roi_cleaned,
                                const cvec& full_cleaned,
                                dsp::sample_range roi, const char* what) {
  ASSERT_EQ(roi_cleaned.size(), full_cleaned.size()) << what;
  for (std::size_t i = kSilentBegin; i < kSilentEnd; ++i)
    ASSERT_EQ(roi_cleaned[i], full_cleaned[i]) << what << " silent " << i;
  const std::size_t end = std::min(roi.end, full_cleaned.size());
  for (std::size_t i = roi.begin; i < end; ++i)
    ASSERT_EQ(roi_cleaned[i], full_cleaned[i]) << what << " roi " << i;
}

TEST(RoiChainTest, UnsetRoiReportsNoAccountingAndNoGauges) {
  const chain_scenario s = make_chain_scenario(1);
  obs::collector collector;
  fd::receive_chain_config cfg;
  cfg.collector = &collector;
  const auto result =
      fd::run_receive_chain(s.tx, s.rx, kSilentBegin, kSilentEnd, cfg);
  EXPECT_EQ(result.roi_samples_processed, 0u);
  EXPECT_EQ(result.roi_samples_skipped, 0u);
  const auto& gauges = collector.registry().gauges();
  EXPECT_FALSE(gauges.contains("runtime.chain.roi.samples_processed"));
  EXPECT_FALSE(gauges.contains("runtime.chain.roi.samples_skipped"));
  EXPECT_FALSE(gauges.contains("runtime.chain.roi.coverage"));
}

TEST(RoiChainTest, InUnionSamplesMatchFullSweepForEveryWindowShape) {
  const chain_scenario s = make_chain_scenario(2);
  const std::size_t n = s.rx.size();
  const auto full =
      fd::run_receive_chain(s.tx, s.rx, kSilentBegin, kSilentEnd, {});

  // The shapes the decoder's window can take relative to the silent
  // window: a typical decode span, the same span off by one each way,
  // silent-window-adjacent (touching ⇒ one merged range), disjoint (a gap
  // ⇒ two ranges with a skipped middle), and full coverage.
  const dsp::sample_range windows[] = {
      {kSilentEnd, 2000},     {kSilentEnd + 1, 1999}, {kSilentEnd - 1, 2001},
      {kSilentEnd, 800},      {1000, 2400},           {0, n},
  };
  for (const dsp::sample_range& roi : windows) {
    fd::receive_chain_config cfg;
    cfg.roi = roi;
    const auto windowed =
        fd::run_receive_chain(s.tx, s.rx, kSilentBegin, kSilentEnd, cfg);
    const std::string what = "roi [" + std::to_string(roi.begin) + ", " +
                             std::to_string(roi.end) + ")";
    expect_scalar_results_equal(windowed, full, what.c_str());
    expect_union_samples_equal(windowed.cleaned, full.cleaned, roi,
                               what.c_str());
    // Accounting: processed = |silent ∪ roi| clamped to the capture.
    const std::size_t lo = std::min(roi.begin, kSilentBegin);
    const std::size_t silent_size = kSilentEnd - kSilentBegin;
    const std::size_t expected =
        roi.begin <= kSilentEnd
            ? std::max(std::min(roi.end, n), kSilentEnd) - lo
            : silent_size + (std::min(roi.end, n) - roi.begin);
    EXPECT_EQ(windowed.roi_samples_processed, expected) << what;
    EXPECT_EQ(windowed.roi_samples_skipped, n - expected) << what;
  }
}

TEST(RoiChainTest, WorksWithEitherStageDisabled) {
  const chain_scenario s = make_chain_scenario(3);
  const dsp::sample_range roi{kSilentEnd, 2000};
  fd::receive_chain_config configs[2];
  configs[0].enable_adc = false;      // ranged digital cancel only
  configs[1].enable_digital = false;  // ranged quantization only
  for (auto& cfg : configs) {
    const auto full =
        fd::run_receive_chain(s.tx, s.rx, kSilentBegin, kSilentEnd, cfg);
    cfg.roi = roi;
    const auto windowed =
        fd::run_receive_chain(s.tx, s.rx, kSilentBegin, kSilentEnd, cfg);
    expect_scalar_results_equal(windowed, full, "stage-disabled");
    expect_union_samples_equal(windowed.cleaned, full.cleaned, roi,
                               "stage-disabled");
    EXPECT_GT(windowed.roi_samples_skipped, 0u);
  }
}

TEST(RoiChainTest, FrontEndHookForcesFullRangeSweep) {
  const chain_scenario s = make_chain_scenario(4);
  auto halve = [](std::span<cplx> samples) {
    for (cplx& v : samples) v *= 0.5;
  };
  fd::receive_chain_config hooked;
  hooked.front_end_hook = halve;
  const auto full =
      fd::run_receive_chain(s.tx, s.rx, kSilentBegin, kSilentEnd, hooked);
  hooked.roi = {kSilentEnd, 2000};
  const auto windowed =
      fd::run_receive_chain(s.tx, s.rx, kSilentBegin, kSilentEnd, hooked);
  // The hook mutates the whole analog-cancelled waveform, so the chain
  // must ignore the roi entirely: every sample identical, nothing skipped.
  expect_scalar_results_equal(windowed, full, "front-end hook");
  ASSERT_EQ(windowed.cleaned.size(), full.cleaned.size());
  for (std::size_t i = 0; i < full.cleaned.size(); ++i)
    ASSERT_EQ(windowed.cleaned[i], full.cleaned[i]) << i;
  EXPECT_EQ(windowed.roi_samples_processed, s.rx.size());
  EXPECT_EQ(windowed.roi_samples_skipped, 0u);
}

TEST(RoiChainTest, ResidualGainTrackingKeepsFullQuantizeSweep) {
  const chain_scenario s = make_chain_scenario(5);
  const dsp::sample_range roi{kSilentEnd, 2000};
  fd::receive_chain_config tracked;
  tracked.track_residual_gain = true;
  const auto full =
      fd::run_receive_chain(s.tx, s.rx, kSilentBegin, kSilentEnd, tracked);
  tracked.roi = roi;
  const auto windowed =
      fd::run_receive_chain(s.tx, s.rx, kSilentBegin, kSilentEnd, tracked);
  // The tracker's pass 1-2 statistics are whole-capture by definition, so
  // quantize/cancel stay full-range (processed = capture length); only the
  // final gain-application pass is ranged, and in-union samples still
  // match the full sweep bit for bit.
  expect_scalar_results_equal(windowed, full, "gain tracking");
  expect_union_samples_equal(windowed.cleaned, full.cleaned, roi,
                             "gain tracking");
  EXPECT_EQ(windowed.roi_samples_processed, s.rx.size());
  EXPECT_EQ(windowed.roi_samples_skipped, 0u);
}

TEST(RoiChainTest, EmitsRoiGaugesWhenConfigured) {
  const chain_scenario s = make_chain_scenario(6);
  obs::collector collector;
  fd::receive_chain_config cfg;
  cfg.roi = {kSilentEnd, 2000};
  cfg.collector = &collector;
  const auto result =
      fd::run_receive_chain(s.tx, s.rx, kSilentBegin, kSilentEnd, cfg);
  EXPECT_GT(result.roi_samples_processed, 0u);
  EXPECT_GT(result.roi_samples_skipped, 0u);
  const auto& gauges = collector.registry().gauges();
  const auto processed = gauges.find("runtime.chain.roi.samples_processed");
  const auto skipped = gauges.find("runtime.chain.roi.samples_skipped");
  const auto coverage = gauges.find("runtime.chain.roi.coverage");
  ASSERT_NE(processed, gauges.end());
  ASSERT_NE(skipped, gauges.end());
  ASSERT_NE(coverage, gauges.end());
  EXPECT_EQ(processed->second.value + skipped->second.value,
            static_cast<double>(s.rx.size()));
  EXPECT_GT(coverage->second.value, 0.0);
  EXPECT_LT(coverage->second.value, 1.0);
}

// --- Decoder read-window bounds ---

TEST(RoiDecoderTest, ReadWindowBoundsDegenerateGeometryIsEmpty) {
  const tag::tag_config tag;
  const reader::backfi_decoder decoder(tag);
  EXPECT_TRUE(decoder.read_window_bounds(0, 0, 600).empty());
  EXPECT_TRUE(decoder.read_window_bounds(1000, 1000, 600).empty());
  EXPECT_TRUE(decoder.read_window_bounds(1000, 2000, 600).empty());
  EXPECT_TRUE(decoder.read_window_bounds(1000, 0, 0).empty());
}

TEST(RoiDecoderTest, ReadWindowWidensWithRetryScheduleAndNeverLeaksCapture) {
  const tag::tag_config tag;
  const std::size_t capture_len = 1 << 16;
  reader::decoder_config narrow;
  narrow.sync_retries = 0;
  reader::decoder_config widened;
  widened.sync_retries = 2;
  widened.retry_search_scale = 3.0;
  const reader::backfi_decoder a(tag, narrow);
  const reader::backfi_decoder b(tag, widened);
  const dsp::sample_range wa = a.read_window_bounds(capture_len, 400, 600);
  const dsp::sample_range wb = b.read_window_bounds(capture_len, 400, 600);
  ASSERT_FALSE(wa.empty());
  ASSERT_FALSE(wb.empty());
  // The worst-case retry widening only ever grows the window.
  EXPECT_LE(wb.begin, wa.begin);
  EXPECT_GE(wb.end, wa.end);
  EXPECT_GT(wb.size(), wa.size());
  EXPECT_LE(wb.end, capture_len);
}

// --- Session-level equivalence: ROI on vs off ---

stream_scenario_config fast_stream_scenario(std::uint64_t seed,
                                            std::size_t n_packets = 4) {
  stream_scenario_config cfg;
  cfg.scenario.excitation.ppdu_bytes = 2000;
  cfg.scenario.payload_bits = 300;
  cfg.scenario.tag.rate = {tag::tag_modulation::qpsk, phy::code_rate::half,
                           1e6};
  cfg.scenario.tag_distance_m = 2.0;
  cfg.scenario.seed = seed;
  cfg.n_packets = n_packets;
  return cfg;
}

reader::stream_config session_config(const stream_scenario_config& cfg,
                                     bool restrict_to_roi) {
  reader::stream_config scfg;
  scfg.tag = cfg.scenario.tag;
  scfg.decoder = cfg.scenario.decoder;
  scfg.chain = cfg.scenario.chain;
  scfg.restrict_to_roi = restrict_to_roi;
  scfg.emit_stream_metrics = false;
  return scfg;
}

void expect_packets_bit_identical(const reader::stream_session& roi_on,
                                  const reader::stream_session& roi_off,
                                  const char* what) {
  ASSERT_EQ(roi_on.results().size(), roi_off.results().size()) << what;
  for (std::size_t i = 0; i < roi_on.results().size(); ++i) {
    const reader::stream_packet_result& a = roi_on.results()[i];
    const reader::stream_packet_result& b = roi_off.results()[i];
    EXPECT_EQ(a.chain.analog_depth_db, b.chain.analog_depth_db)
        << what << " packet " << i;
    EXPECT_EQ(a.chain.total_depth_db, b.chain.total_depth_db)
        << what << " packet " << i;
    EXPECT_EQ(a.chain.residual_power, b.chain.residual_power)
        << what << " packet " << i;
    EXPECT_EQ(a.chain.adc_saturated, b.chain.adc_saturated)
        << what << " packet " << i;
    EXPECT_EQ(a.decoded.sync_found, b.decoded.sync_found)
        << what << " packet " << i;
    EXPECT_EQ(a.decoded.sync_attempts, b.decoded.sync_attempts)
        << what << " packet " << i;
    EXPECT_EQ(a.decoded.timing_offset, b.decoded.timing_offset)
        << what << " packet " << i;
    EXPECT_EQ(a.decoded.crc_ok, b.decoded.crc_ok) << what << " packet " << i;
    EXPECT_EQ(a.decoded.failure, b.decoded.failure)
        << what << " packet " << i;
    ASSERT_EQ(a.decoded.payload, b.decoded.payload)
        << what << " packet " << i;
    EXPECT_EQ(a.decoded.post_mrc_snr_db, b.decoded.post_mrc_snr_db)
        << what << " packet " << i;
    EXPECT_EQ(a.decoded.evm_rms, b.decoded.evm_rms) << what << " packet " << i;
  }
}

TEST(RoiEquivalenceTest, SessionRoiOnMatchesRoiOffBitExact) {
  for (const std::uint64_t seed : {1u, 7u, 42u}) {
    stream_scenario_config cfg = fast_stream_scenario(seed, 4);
    cfg.forward_drift.coherence_packets = 8.0;
    cfg.lo_drift.step_std_rad = 0.05;
    const stream_capture cap = build_stream_capture(cfg);
    for (const std::size_t threads : {1u, 2u}) {
      reader::stream_config on = session_config(cfg, true);
      reader::stream_config off = session_config(cfg, false);
      on.threads = threads;
      off.threads = threads;
      reader::stream_session roi_on(cap.x, cap.y, cap.schedule, on);
      reader::stream_session roi_off(cap.x, cap.y, cap.schedule, off);
      roi_on.finish();
      roi_off.finish();
      const std::string what =
          "seed " + std::to_string(seed) + " threads " + std::to_string(threads);
      expect_packets_bit_identical(roi_on, roi_off, what.c_str());
      // ROI-on actually skipped work; ROI-off reports none.
      EXPECT_GT(roi_on.stats().roi_samples_skipped, 0u) << what;
      EXPECT_GT(roi_on.stats().roi_samples_processed, 0u) << what;
      EXPECT_EQ(roi_off.stats().roi_samples_processed, 0u) << what;
      EXPECT_EQ(roi_off.stats().roi_samples_skipped, 0u) << what;
    }
  }
}

TEST(RoiEquivalenceTest, PostCancelHookDisablesSessionRoi) {
  const stream_scenario_config cfg = fast_stream_scenario(3, 2);
  const stream_capture cap = build_stream_capture(cfg);
  reader::stream_config scfg = session_config(cfg, true);
  scfg.post_cancel_hook = [](std::span<const cplx>, std::span<cplx>,
                             std::size_t) {};
  reader::stream_session session(cap.x, cap.y, cap.schedule, scfg);
  session.finish();
  // The hook reads/mutates the whole cleaned segment, so the session must
  // fall back to the full-capture chain even with restrict_to_roi set.
  EXPECT_EQ(session.stats().roi_samples_processed, 0u);
  EXPECT_EQ(session.stats().roi_samples_skipped, 0u);
}

// Satellite: force the decoder through a widened retry (sync_attempts > 1)
// under a tight per-packet ROI and pin bit-identical recovery vs the
// full-capture chain. Shifting the nominal origin EARLIER than the true
// wake instant keeps the silent window backscatter-free (the tag is not
// reflecting yet) while giving the sync scan a +delta timing offset past
// the first attempt's search half-width — attempt 0 fails, the
// retry-widened attempt recovers it, and the ROI (derived from the same
// worst-case widening) still covers every sample the retry reads.
TEST(RoiRetryTest, RetryWidenedSyncBitIdenticalUnderTightRoi) {
  const stream_scenario_config cfg = fast_stream_scenario(1, 1);
  const stream_capture cap = build_stream_capture(cfg);
  ASSERT_EQ(cap.schedule.size(), 1u);
  ASSERT_TRUE(cap.woke[0]);

  // Default decoder: timing_search 24, one retry at scale 3 ⇒ reach 72.
  const int delta = 40;  // past attempt 0, inside the widened attempt
  std::array<reader::stream_packet, 1> shifted{cap.schedule[0]};
  ASSERT_GE(shifted[0].wake_end, shifted[0].begin + delta);
  shifted[0].wake_end -= delta;
  shifted[0].silent_end -= delta;

  reader::stream_config on = session_config(cfg, true);
  reader::stream_config off = session_config(cfg, false);
  reader::stream_session roi_on(cap.x, cap.y, shifted, on);
  reader::stream_session roi_off(cap.x, cap.y, shifted, off);
  roi_on.finish();
  roi_off.finish();

  const reader::decode_result& decoded = roi_on.results()[0].decoded;
  ASSERT_TRUE(decoded.sync_found);
  EXPECT_GT(decoded.sync_attempts, 1u);
  // The recovered offset is the schedule shift plus the tag's own wake
  // jitter — what matters is that it sits beyond attempt 0's ±24 reach.
  EXPECT_GE(decoded.timing_offset, delta);
  EXPECT_TRUE(decoded.crc_ok);
  ASSERT_EQ(decoded.payload, cap.payloads[0]);
  expect_packets_bit_identical(roi_on, roi_off, "retry-widened sync");
  EXPECT_GT(roi_on.stats().roi_samples_skipped, 0u);
}

// Streaming gate: the 32-packet drifting capture through the ROI-shrunk
// session pipeline decodes bit-identically to the full-capture per-packet
// batch reference, at both session topologies.
TEST(RoiEquivalenceTest, StreamingDriftCaptureMatchesFullCaptureReference) {
  stream_scenario_config cfg = fast_stream_scenario(1, 32);
  cfg.forward_drift.coherence_packets = 16.0;
  cfg.lo_drift.step_std_rad = 0.02;
  const stream_trial_result batch = run_stream_batch_reference(cfg);
  for (const std::size_t threads : {1u, 2u}) {
    cfg.threads = threads;
    const stream_trial_result streamed = run_stream_trial(cfg);
    ASSERT_EQ(streamed.packets.size(), batch.packets.size());
    for (std::size_t i = 0; i < streamed.packets.size(); ++i) {
      EXPECT_EQ(streamed.packets[i].crc_ok, batch.packets[i].crc_ok) << i;
      EXPECT_EQ(streamed.packets[i].bit_errors, batch.packets[i].bit_errors)
          << i;
      ASSERT_EQ(streamed.packets[i].payload, batch.packets[i].payload) << i;
    }
    EXPECT_EQ(streamed.crc_ok, batch.crc_ok);
    EXPECT_GT(streamed.stats.roi_samples_skipped, 0u);
  }
}

// Thread sweep: the Monte-Carlo pool runs the ROI-shrunk trial path; the
// PER and the deterministic (no-timings) telemetry export must stay
// byte-identical at 1/2/4/8 threads.
TEST(RoiEquivalenceTest, PerAndTelemetryDigestIdenticalAcrossThreadCounts) {
  scenario_config cfg;
  cfg.excitation.ppdu_bytes = 2000;
  cfg.payload_bits = 300;
  cfg.tag.rate = {tag::tag_modulation::qpsk, phy::code_rate::half, 1e6};
  cfg.tag_distance_m = 3.5;
  cfg.seed = 5;

  double reference_per = 0.0;
  std::string reference_json;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    scoped_thread_count guard(threads);
    obs::collector collector;
    scenario_config run_cfg = cfg;
    run_cfg.collector = &collector;
    const double per = packet_error_rate(run_cfg, 24);
    const std::string json = obs::to_json(
        collector.registry(), {.include_timings = false, .pretty = true});
    if (reference_json.empty()) {
      reference_per = per;
      reference_json = json;
      continue;
    }
    EXPECT_EQ(per, reference_per) << "threads=" << threads;
    EXPECT_EQ(json, reference_json) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace backfi::sim
