// End-to-end integration properties across the whole stack: protocol
// selectivity, long-preamble mode, distance/BER monotonicity, and the
// determinism guarantees the benches rely on.
#include <gtest/gtest.h>

#include "phy/prbs.h"
#include "sim/backscatter_sim.h"
#include "sim/coexistence.h"
#include "sim/rate_adaptation.h"
#include "tag/wake_detector.h"

namespace backfi::sim {
namespace {

scenario_config baseline() {
  scenario_config cfg;
  cfg.excitation.ppdu_bytes = 2000;
  cfg.payload_bits = 300;
  cfg.tag.rate = {tag::tag_modulation::qpsk, phy::code_rate::half, 1e6};
  cfg.tag_distance_m = 2.0;
  cfg.seed = 7;
  return cfg;
}

TEST(IntegrationTest, WrongTagIdStaysAsleep) {
  // The AP addresses tag 1; a tag with a different id must not wake
  // (per-tag pseudo-random wake preambles, paper Section 4.1).
  scenario_config cfg = baseline();
  cfg.excitation.tag_id = 1;
  cfg.tag.id = 1;
  const auto addressed = run_backscatter_trial(cfg);
  EXPECT_TRUE(addressed.woke);

  // run_backscatter_trial keys the excitation off config.tag.id (the AP
  // addresses the tag under test), so emulate the mismatch directly: the
  // excitation carries tag 2's preamble while tag 9 listens.
  const reader::excitation ex = reader::build_excitation({.tag_id = 2});
  const auto wake =
      tag::detect_wake(std::span<const cplx>(ex.samples).first(400),
                       phy::wake_preamble(9), -20.0);
  EXPECT_FALSE(wake.woke);
}

TEST(IntegrationTest, LongPreambleModeWorksEndToEnd) {
  scenario_config cfg = baseline();
  cfg.tag.preamble_us = 96;
  const auto r = run_backscatter_trial(cfg);
  ASSERT_TRUE(r.crc_ok);
  EXPECT_EQ(r.bit_errors, 0u);
}

TEST(IntegrationTest, PerNonDecreasingWithDistance) {
  scenario_config cfg = baseline();
  cfg.tag.rate = {tag::tag_modulation::psk16, phy::code_rate::two_thirds, 2.5e6};
  cfg.seed = 31;
  const double per_near = packet_error_rate(cfg, 5);
  cfg.tag_distance_m = 5.0;
  const double per_mid = packet_error_rate(cfg, 5);
  cfg.tag_distance_m = 9.0;
  const double per_far = packet_error_rate(cfg, 5);
  EXPECT_LE(per_near, per_mid + 0.21);  // allow one-trial noise
  EXPECT_LE(per_mid, per_far + 0.21);
  EXPECT_LE(per_near, 0.2);
  EXPECT_GE(per_far, 0.8);
}

TEST(IntegrationTest, AllFig7PointsDecodeAtPointBlankRange) {
  // Every operating point the tag supports must work somewhere; at 0.75 m
  // the link budget is enormous.
  scenario_config base = baseline();
  base.seed = 55;
  for (const auto& point : all_operating_points()) {
    const auto cfg = scenario_for_point(base, point.rate, 0.75);
    const auto r = run_backscatter_trial(cfg);
    EXPECT_TRUE(r.crc_ok) << tag::modulation_name(point.rate.modulation) << " "
                          << phy::code_rate_name(point.rate.coding) << " @ "
                          << point.rate.symbol_rate_hz;
  }
}

TEST(IntegrationTest, EnergyScalesWithPayload) {
  scenario_config small = baseline();
  small.payload_bits = 100;
  scenario_config large = baseline();
  large.payload_bits = 400;
  const auto r_small = run_backscatter_trial(small);
  const auto r_large = run_backscatter_trial(large);
  ASSERT_TRUE(r_small.woke);
  ASSERT_TRUE(r_large.woke);
  // Energy proportional to info bits (payload + CRC) at a fixed EPB.
  EXPECT_NEAR(r_large.tag_energy_pj / r_small.tag_energy_pj,
              (400.0 + 32.0) / (100.0 + 32.0), 1e-9);
}

TEST(IntegrationTest, FullyDeterministicAcrossRuns) {
  const auto a = run_backscatter_trial(baseline());
  const auto b = run_backscatter_trial(baseline());
  EXPECT_EQ(a.crc_ok, b.crc_ok);
  EXPECT_EQ(a.bit_errors, b.bit_errors);
  EXPECT_EQ(a.raw_symbol_errors, b.raw_symbol_errors);
  EXPECT_DOUBLE_EQ(a.link.post_mrc_snr_db, b.link.post_mrc_snr_db);
  EXPECT_DOUBLE_EQ(a.link.total_depth_db, b.link.total_depth_db);
  EXPECT_DOUBLE_EQ(a.tag_energy_pj, b.tag_energy_pj);

  coexistence_config cc;
  cc.seed = 3;
  const auto c1 = run_coexistence_trial(cc);
  const auto c2 = run_coexistence_trial(cc);
  EXPECT_EQ(c1.client_decoded, c2.client_decoded);
  EXPECT_DOUBLE_EQ(c1.client_snr_db, c2.client_snr_db);
}

class DistanceSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(DistanceSweepTest, MeasuredSnrWithinFewDbOfOracle) {
  // Property over ranges: whenever the decoder syncs, its measured SNR
  // sits within a few dB below the oracle (never meaningfully above).
  scenario_config cfg = baseline();
  cfg.tag_distance_m = GetParam();
  int synced = 0;
  for (int t = 0; t < 5; ++t) {
    cfg.seed = 400 + static_cast<std::uint64_t>(GetParam() * 10) + t;
    const auto r = run_backscatter_trial(cfg);
    if (!r.sync_found) continue;
    ++synced;
    EXPECT_LT(r.link.post_mrc_snr_db, r.link.expected_snr_db + 2.0) << GetParam();
    EXPECT_GT(r.link.post_mrc_snr_db, r.link.expected_snr_db - 12.0) << GetParam();
  }
  if (GetParam() <= 3.0) {
    EXPECT_GE(synced, 4);
  }
}

INSTANTIATE_TEST_SUITE_P(Ranges, DistanceSweepTest,
                         ::testing::Values(0.5, 1.0, 2.0, 3.0, 4.0));

}  // namespace
}  // namespace backfi::sim
