#include "sim/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "sim/backscatter_sim.h"
#include "sim/coexistence.h"

namespace backfi::sim {
namespace {

TEST(ParallelForTest, RunsEveryIndexExactlyOnce) {
  scoped_thread_count threads(4);
  const std::size_t n = 1000;
  // Disjoint slots: each index touches only its own element.
  std::vector<int> counts(n, 0);
  parallel_for(n, [&](std::size_t i) { ++counts[i]; });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(counts[i], 1) << "i=" << i;
}

TEST(ParallelForTest, ZeroIterationsIsNoOp) {
  scoped_thread_count threads(4);
  bool ran = false;
  parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelForTest, SingleThreadRunsSeriallyInIndexOrder) {
  scoped_thread_count threads(1);
  std::vector<std::size_t> order;
  parallel_for(64, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 64u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelForTest, NestedCallsCompleteWithoutDeadlock) {
  scoped_thread_count threads(4);
  const std::size_t outer = 8, inner = 16;
  std::vector<int> counts(outer * inner, 0);
  parallel_for(outer, [&](std::size_t i) {
    // Inside a worker this inner loop runs serially on the same thread, so
    // writing counts[i * inner + j] from it is race-free.
    parallel_for(inner, [&](std::size_t j) { ++counts[i * inner + j]; });
  });
  for (std::size_t k = 0; k < counts.size(); ++k)
    EXPECT_EQ(counts[k], 1) << "k=" << k;
}

TEST(ParallelForTest, PropagatesExceptionFromWorker) {
  scoped_thread_count threads(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      parallel_for(100,
                   [&](std::size_t i) {
                     if (i == 3) throw std::runtime_error("trial failed");
                     completed.fetch_add(1, std::memory_order_relaxed);
                   }),
      std::runtime_error);
  // After the throw the remaining indices are abandoned, not run.
  EXPECT_LT(completed.load(), 100);
}

TEST(ParallelForTest, ScopedThreadCountOverridesAndRestores) {
  const std::size_t ambient = max_threads();
  {
    scoped_thread_count outer(3);
    EXPECT_EQ(max_threads(), 3u);
    {
      scoped_thread_count inner(7);
      EXPECT_EQ(max_threads(), 7u);
    }
    EXPECT_EQ(max_threads(), 3u);
  }
  EXPECT_EQ(max_threads(), ambient);
}

TEST(ParallelMapTest, PreservesIndexOrdering) {
  scoped_thread_count threads(4);
  const auto squares =
      parallel_map<std::size_t>(100, [](std::size_t i) { return i * i; });
  ASSERT_EQ(squares.size(), 100u);
  for (std::size_t i = 0; i < squares.size(); ++i) EXPECT_EQ(squares[i], i * i);
}

// --- Determinism anchors -------------------------------------------------
//
// The Monte-Carlo evaluators derive each trial's RNG stream from (base
// seed, trial index), so their results must be bit-identical at any thread
// count AND equal to the pre-parallelization serial outputs. The literals
// below were captured from the serial implementation before parallel_for
// was introduced; a change in any of them is a regression, not noise.

scenario_config anchor_scenario(double distance_m) {
  scenario_config c;
  c.seed = 42;
  c.tag_distance_m = distance_m;
  c.payload_bits = 400;
  return c;
}

TEST(ParallelDeterminismTest, PacketErrorRateBitIdenticalAcrossThreadCounts) {
  const scenario_config c = anchor_scenario(4.5);
  double per1, per2, per4;
  {
    scoped_thread_count threads(1);
    per1 = packet_error_rate(c, 24);
  }
  {
    scoped_thread_count threads(2);
    per2 = packet_error_rate(c, 24);
  }
  {
    scoped_thread_count threads(4);
    per4 = packet_error_rate(c, 24);
  }
  EXPECT_EQ(per1, per2);
  EXPECT_EQ(per1, per4);
  // Pre-change serial output (9 of 24 packets failed at 4.5 m).
  EXPECT_EQ(per1, 0.375);
}

TEST(ParallelDeterminismTest, PacketErrorRateMatchesPreChangeSerialAnchor) {
  scoped_thread_count threads(4);
  const double per = packet_error_rate(anchor_scenario(4.0), 24);
  // Pre-change serial output: exactly 2 of 24 packets failed at 4.0 m.
  EXPECT_EQ(per, 2.0 / 24.0);
}

TEST(ParallelDeterminismTest, ClientThroughputBitIdenticalAcrossThreadCounts) {
  coexistence_config c;
  c.seed = 5;
  c.ap_client_distance_m = 8.0;
  double tput1, tput4;
  {
    scoped_thread_count threads(1);
    tput1 = client_throughput_bps(c, 12);
  }
  {
    scoped_thread_count threads(4);
    tput4 = client_throughput_bps(c, 12);
  }
  EXPECT_EQ(tput1, tput4);
  // Pre-change serial output: 11 of 12 client packets delivered at 54 Mbps.
  EXPECT_EQ(tput1, 54e6 * 11.0 / 12.0);
}

}  // namespace
}  // namespace backfi::sim
