#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "obs/collector.h"
#include "obs/export.h"
#include "sim/backscatter_sim.h"
#include "sim/parallel.h"
#include "sim/rate_adaptation.h"

namespace backfi::sim {
namespace {

scenario_config anchor_scenario(double distance_m) {
  scenario_config c;
  c.seed = 42;
  c.tag_distance_m = distance_m;
  c.payload_bits = 400;
  return c;
}

TEST(AdaptivePerTest, WilsonHalfwidthMatchesClosedForm) {
  const double z = 1.959963984540054;
  // Degenerate inputs.
  EXPECT_EQ(wilson_halfwidth(0, 0, z), 1.0);
  EXPECT_EQ(wilson_halfwidth(5, -1, z), 1.0);
  // Closed form: (z / (1 + z^2/n)) * sqrt(p(1-p)/n + z^2/(4n^2)).
  for (const auto& [failures, trials] : {std::pair{0, 16}, {3, 16}, {8, 16},
                                         {0, 100}, {50, 100}, {100, 100}}) {
    const double n = trials, p = static_cast<double>(failures) / n;
    const double expected = (z / (1.0 + z * z / n)) *
                            std::sqrt(p * (1.0 - p) / n +
                                      z * z / (4.0 * n * n));
    EXPECT_DOUBLE_EQ(wilson_halfwidth(failures, trials, z), expected)
        << failures << "/" << trials;
  }
  // Symmetric in failures vs successes, shrinks with more evidence.
  EXPECT_DOUBLE_EQ(wilson_halfwidth(3, 16, z), wilson_halfwidth(13, 16, z));
  EXPECT_LT(wilson_halfwidth(0, 32, z), wilson_halfwidth(0, 16, z));
  EXPECT_LT(wilson_halfwidth(8, 16, z), 0.25);
}

TEST(AdaptivePerTest, FixedTargetRunsExactlyMaxTrialsAndMatchesFixedApi) {
  // target_ci_halfwidth == 0 (the default) disables early stopping: the
  // adaptive API must reproduce the fixed API bit for bit.
  scoped_thread_count threads(4);
  const scenario_config c = anchor_scenario(4.5);
  per_options options;
  options.max_trials = 24;
  const per_estimate e = packet_error_rate(c, options);
  EXPECT_EQ(e.trials_run, 24);
  EXPECT_FALSE(e.early_stopped);
  EXPECT_EQ(e.per, packet_error_rate(c, 24));
  EXPECT_EQ(e.per, 0.375);  // the PR 2 pinned anchor
  EXPECT_EQ(e.failures, 9);
}

TEST(AdaptivePerTest, ZeroMaxTrialsReturnsEmptyEstimate) {
  const per_estimate e =
      packet_error_rate(anchor_scenario(2.0), per_options{});
  EXPECT_EQ(e.trials_run, 0);
  EXPECT_EQ(e.per, 0.0);
  EXPECT_FALSE(e.early_stopped);
}

TEST(AdaptivePerTest, EarlyStopsOnConfidentPointAtBatchBoundary) {
  // 0.5 m decodes every packet: the Wilson half-width at 0/16 is ~0.097,
  // under the 0.15 target, so the point must stop at the first batch
  // boundary past min_trials instead of burning all 64 trials.
  scoped_thread_count threads(4);
  per_options options;
  options.max_trials = 64;
  options.target_ci_halfwidth = 0.15;
  const per_estimate e = packet_error_rate(anchor_scenario(0.5), options);
  EXPECT_TRUE(e.early_stopped);
  EXPECT_EQ(e.trials_run, 16);  // min_trials=16, batch=8: stops right there
  EXPECT_GE(e.trials_run, options.min_trials);
  EXPECT_LE(e.ci_halfwidth, options.target_ci_halfwidth);
  EXPECT_EQ(e.per, 0.0);
}

TEST(AdaptivePerTest, NeverStopsBeforeMinTrials) {
  scoped_thread_count threads(2);
  per_options options;
  options.max_trials = 40;
  options.target_ci_halfwidth = 0.9;  // trivially satisfied immediately
  options.min_trials = 24;
  const per_estimate e = packet_error_rate(anchor_scenario(0.5), options);
  EXPECT_GE(e.trials_run, 24);
  EXPECT_LE(e.trials_run, 40);
}

TEST(AdaptivePerTest, EstimatesAndTelemetryIdenticalAcrossThreadCounts) {
  // The stopping rule replays deterministic outcome prefixes at fixed
  // batch boundaries, so the estimates AND the merged deterministic
  // telemetry (trial probes + sim.adaptive.* + sim.scheduler.*) must be
  // byte-identical at any thread count.
  per_options options;
  options.max_trials = 32;
  options.target_ci_halfwidth = 0.2;
  const std::vector<scenario_config> configs = {anchor_scenario(0.5),
                                                anchor_scenario(4.5)};
  std::vector<per_estimate> reference;
  std::string reference_json;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    scoped_thread_count guard(threads);
    obs::collector collector;
    const std::vector<per_estimate> estimates = packet_error_rates_adaptive(
        std::span(configs.data(), configs.size()), options, &collector);
    const std::string json = obs::to_json(
        collector.registry(), {.include_timings = false, .pretty = true});
    if (reference.empty()) {
      reference = estimates;
      reference_json = json;
      continue;
    }
    ASSERT_EQ(estimates.size(), reference.size());
    for (std::size_t i = 0; i < estimates.size(); ++i) {
      EXPECT_EQ(estimates[i].per, reference[i].per) << "threads=" << threads;
      EXPECT_EQ(estimates[i].trials_run, reference[i].trials_run)
          << "threads=" << threads;
      EXPECT_EQ(estimates[i].failures, reference[i].failures);
      EXPECT_EQ(estimates[i].early_stopped, reference[i].early_stopped);
    }
    EXPECT_EQ(json, reference_json) << "threads=" << threads;
  }
}

TEST(AdaptivePerTest, ExportsAdaptiveCounters) {
  scoped_thread_count threads(4);
  per_options options;
  options.max_trials = 32;
  options.target_ci_halfwidth = 0.15;
  const std::vector<scenario_config> configs = {anchor_scenario(0.5),
                                                anchor_scenario(0.5)};
  obs::collector collector;
  const auto estimates = packet_error_rates_adaptive(
      std::span(configs.data(), configs.size()), options, &collector);
  const auto& counters = collector.registry().counters();
  EXPECT_EQ(counters.at("sim.adaptive.points").value, 2u);
  std::uint64_t run = 0, saved = 0, stops = 0;
  for (const per_estimate& e : estimates) {
    run += static_cast<std::uint64_t>(e.trials_run);
    saved += static_cast<std::uint64_t>(options.max_trials - e.trials_run);
    stops += e.early_stopped ? 1 : 0;
  }
  EXPECT_EQ(counters.at("sim.adaptive.trials_run").value, run);
  EXPECT_EQ(counters.at("sim.adaptive.trials_saved").value, saved);
  EXPECT_EQ(counters.at("sim.adaptive.early_stops").value, stops);
  EXPECT_GT(saved, 0u);  // both easy points must have stopped early
}

TEST(AdaptivePerTest, EvaluateLinkAdaptiveMatchesFixedWithoutTarget) {
  // With the CI rule disabled the adaptive evaluate_link must agree with
  // the fixed-trials one on every operating point.
  scoped_thread_count threads(4);
  scenario_config base;
  base.seed = 7;
  base.payload_bits = 200;
  const int trials = 2;
  const auto fixed = evaluate_link(base, 1.0, trials);
  per_options options;
  options.max_trials = trials;
  const auto adaptive = evaluate_link(base, 1.0, options);
  ASSERT_EQ(adaptive.size(), fixed.size());
  for (std::size_t i = 0; i < fixed.size(); ++i) {
    EXPECT_EQ(adaptive[i].packet_error_rate, fixed[i].packet_error_rate)
        << "point " << i;
    EXPECT_EQ(adaptive[i].goodput_bps, fixed[i].goodput_bps);
    EXPECT_EQ(adaptive[i].usable, fixed[i].usable);
  }
}

}  // namespace
}  // namespace backfi::sim
