#include "sim/fault_campaign.h"

#include <gtest/gtest.h>

namespace backfi::sim {
namespace {

campaign_config small_config() {
  campaign_config config;
  config.link.excitation.ppdu_bytes = 1500;
  config.payload_bits = 128;
  config.opportunities = 8;
  config.seed = 21;
  return config;
}

TEST(FaultCampaignTest, CleanLinkDeliversEqualGoodputInBothArms) {
  const campaign_config config = small_config();
  const auto baseline =
      run_campaign_arm(config, impair::fault_class::none, 0.0, false);
  const auto recovery =
      run_campaign_arm(config, impair::fault_class::none, 0.0, true);
  EXPECT_EQ(baseline.success_rate, 1.0);
  EXPECT_EQ(recovery.success_rate, 1.0);
  EXPECT_DOUBLE_EQ(baseline.goodput_bps, recovery.goodput_bps);
  EXPECT_EQ(recovery.retries, 0u);
  EXPECT_EQ(recovery.fallbacks, 0u);
}

TEST(FaultCampaignTest, RecoveryArmSurvivesCfoThatCollapsesBaseline) {
  const campaign_config config = small_config();
  const auto baseline =
      run_campaign_arm(config, impair::fault_class::cfo_drift, 0.5, false);
  const auto recovery =
      run_campaign_arm(config, impair::fault_class::cfo_drift, 0.5, true);
  // The acceptance criterion in miniature: the fixed-rate plain chain
  // collapses, the hardened + supervised arm keeps delivering and reaches
  // its first success within a bounded number of polls.
  EXPECT_EQ(baseline.goodput_bps, 0.0);
  EXPECT_GT(recovery.goodput_bps, 0.0);
  EXPECT_LT(recovery.first_success_poll, config.opportunities);
}

TEST(FaultCampaignTest, BaselineNeverMovesItsOperatingPoint) {
  const campaign_config config = small_config();
  const auto run = run_campaign_arm(
      config, impair::fault_class::canceller_stage_failure, 1.0, false);
  EXPECT_EQ(run.final_rate.symbol_rate_hz, config.start_rate.symbol_rate_hz);
  EXPECT_EQ(run.final_rate.modulation, config.start_rate.modulation);
  EXPECT_EQ(run.retries, 0u);
  EXPECT_EQ(run.fallbacks, 0u);
}

TEST(FaultCampaignTest, SweepCoversEveryClassAndSeverity) {
  campaign_config config = small_config();
  config.opportunities = 2;
  config.faults = {impair::fault_class::tag_brownout,
                   impair::fault_class::wifi_interferer};
  config.severities = {0.0, 1.0};
  const auto result = run_fault_campaign(config);
  ASSERT_EQ(result.cells.size(), 4u);
  EXPECT_EQ(result.cells[0].fault, impair::fault_class::tag_brownout);
  EXPECT_EQ(result.cells[0].severity, 0.0);
  EXPECT_EQ(result.cells[3].fault, impair::fault_class::wifi_interferer);
  EXPECT_EQ(result.cells[3].severity, 1.0);
}

TEST(FaultCampaignTest, RunsAreDeterministic) {
  const campaign_config config = small_config();
  const auto a =
      run_campaign_arm(config, impair::fault_class::phase_noise, 1.0, true);
  const auto b =
      run_campaign_arm(config, impair::fault_class::phase_noise, 1.0, true);
  EXPECT_DOUBLE_EQ(a.goodput_bps, b.goodput_bps);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.fallbacks, b.fallbacks);
  EXPECT_EQ(a.first_success_poll, b.first_success_poll);
}

}  // namespace
}  // namespace backfi::sim
