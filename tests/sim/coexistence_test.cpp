#include "sim/coexistence.h"

#include <gtest/gtest.h>

#include "channel/pathloss.h"

namespace backfi::sim {
namespace {

coexistence_config base_config() {
  coexistence_config cfg;
  cfg.ap_client_distance_m = 5.0;
  cfg.ap_tag_distance_m = 1.0;
  cfg.rate = wifi::wifi_rate::mbps24;
  cfg.ppdu_bytes = 500;
  cfg.tag.rate = {tag::tag_modulation::qpsk, phy::code_rate::half, 1e6};
  cfg.seed = 1;
  return cfg;
}

TEST(CoexistenceTest, ClientDecodesWithInactiveTag) {
  coexistence_config cfg = base_config();
  cfg.tag_active = false;
  const auto r = run_coexistence_trial(cfg);
  EXPECT_TRUE(r.client_decoded);
  EXPECT_GT(r.client_snr_db, 20.0);
}

TEST(CoexistenceTest, ClientDecodesWithTagAtModerateDistance) {
  // Paper Fig. 12b: beyond ~0.5 m tag-AP separation the impact vanishes.
  coexistence_config cfg = base_config();
  cfg.tag_active = true;
  cfg.ap_tag_distance_m = 2.0;
  const auto r = run_coexistence_trial(cfg);
  EXPECT_TRUE(r.client_decoded);
}

TEST(CoexistenceTest, VeryCloseTagDegradesSnr) {
  // Paper Fig. 13b: tag at 0.25 m measurably lowers client SNR.
  double snr_on = 0.0, snr_off = 0.0;
  const int trials = 6;
  for (int t = 0; t < trials; ++t) {
    coexistence_config cfg = base_config();
    cfg.ap_tag_distance_m = 0.25;
    cfg.seed = 100 + t;
    cfg.tag_active = true;
    snr_on += run_coexistence_trial(cfg).client_snr_db;
    cfg.tag_active = false;
    snr_off += run_coexistence_trial(cfg).client_snr_db;
  }
  EXPECT_LT(snr_on, snr_off);
}

TEST(CoexistenceTest, ImpactShrinksWithTagDistance) {
  auto evm_at = [&](double d_tag) {
    double acc = 0.0;
    const int trials = 5;
    for (int t = 0; t < trials; ++t) {
      coexistence_config cfg = base_config();
      cfg.ap_tag_distance_m = d_tag;
      cfg.seed = 200 + t;
      acc += run_coexistence_trial(cfg).client_evm_rms;
    }
    return acc / trials;
  };
  EXPECT_GT(evm_at(0.25), evm_at(4.0));
}

TEST(CoexistenceTest, ThroughputReflectsPacketSuccess) {
  coexistence_config cfg = base_config();
  cfg.tag_active = false;
  const double tput = client_throughput_bps(cfg, 4);
  EXPECT_NEAR(tput, 24e6, 1e-6);  // every packet decodes at this SNR
}

TEST(CoexistenceTest, DistanceForClientSnrInvertsLinkBudget) {
  const channel::link_budget budget;
  for (double snr : {15.0, 25.0, 35.0}) {
    const double d = distance_for_client_snr(budget, snr);
    ASSERT_GT(d, 0.0);
    // Round-trip: a client at distance d should see roughly snr.
    const double pl = channel::log_distance_path_loss_db(
        d, budget.frequency_hz, budget.path_loss_exponent);
    const double floor = channel::noise_floor_dbm(budget.bandwidth_hz,
                                                  budget.noise_figure_db);
    EXPECT_NEAR(budget.tx_power_dbm - pl - floor, snr, 0.1) << snr;
  }
}

TEST(CoexistenceTest, WorstCaseCollinearTagClientDistance) {
  coexistence_config cfg = base_config();
  cfg.ap_client_distance_m = 5.0;
  cfg.ap_tag_distance_m = 0.25;
  cfg.tag_client_distance_m = -1.0;  // auto: |5 - 0.25| = 4.75
  // Just exercise the path; the trial must complete.
  const auto r = run_coexistence_trial(cfg);
  EXPECT_GE(r.client_snr_db, 0.0);
}

}  // namespace
}  // namespace backfi::sim
