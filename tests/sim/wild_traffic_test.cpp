#include "sim/wild_traffic.h"

#include <gtest/gtest.h>

#include "sim/fault_campaign.h"
#include "sim/parallel.h"

namespace backfi::sim {
namespace {

wild_traffic_config small_config() {
  wild_traffic_config config;
  config.link.excitation.ppdu_bytes = 1500;
  config.coding.block_symbols = 4;
  config.coding.symbol_bytes = 4;
  config.coding.rs_repair_symbols = 2;
  config.opportunities = 12;
  config.trials = 1;
  config.mean_burst_polls = 3.0;
  config.seed = 33;
  return config;
}

TEST(WildTrafficTest, CleanAirDecodesBlocksInEveryScheme) {
  const wild_traffic_config config = small_config();
  for (const phy::erasure_scheme scheme :
       {phy::erasure_scheme::none, phy::erasure_scheme::reed_solomon,
        phy::erasure_scheme::fountain}) {
    const wild_run run = run_wild_arm(config, scheme, 1.0, 7);
    EXPECT_EQ(run.delivered_fraction, 1.0) << static_cast<int>(scheme);
    EXPECT_GT(run.blocks_decoded, 0.0) << static_cast<int>(scheme);
    EXPECT_GT(run.goodput_bps, 0.0) << static_cast<int>(scheme);
    EXPECT_EQ(run.blocks_abandoned, 0.0) << static_cast<int>(scheme);
  }
}

TEST(WildTrafficTest, CodedSchemesOutliveBurstsThatStallPlainArq) {
  wild_traffic_config config = small_config();
  config.opportunities = 48;
  const double duty = 0.6;
  const wild_run plain =
      run_wild_arm(config, phy::erasure_scheme::none, duty, 5);
  const wild_run rs =
      run_wild_arm(config, phy::erasure_scheme::reed_solomon, duty, 5);
  const wild_run fountain =
      run_wild_arm(config, phy::erasure_scheme::fountain, duty, 5);
  // Identical air (same arm seed => same burst schedule and PHY draws):
  // the whole-block packet needs k contiguous ON slots, the coded streams
  // only need k ON slots anywhere.
  EXPECT_GE(rs.blocks_decoded, plain.blocks_decoded);
  EXPECT_GE(fountain.blocks_decoded, plain.blocks_decoded);
  EXPECT_GT(fountain.blocks_decoded, 0.0);
  EXPECT_GT(rs.blocks_decoded, 0.0);
}

TEST(WildTrafficTest, ArmsAreDeterministic) {
  const wild_traffic_config config = small_config();
  const wild_run a =
      run_wild_arm(config, phy::erasure_scheme::reed_solomon, 0.6, 9);
  const wild_run b =
      run_wild_arm(config, phy::erasure_scheme::reed_solomon, 0.6, 9);
  EXPECT_DOUBLE_EQ(a.goodput_bps, b.goodput_bps);
  EXPECT_DOUBLE_EQ(a.delivered_fraction, b.delivered_fraction);
  EXPECT_DOUBLE_EQ(a.polls_issued, b.polls_issued);
  EXPECT_DOUBLE_EQ(a.blocks_decoded, b.blocks_decoded);
  EXPECT_DOUBLE_EQ(a.repair_symbols, b.repair_symbols);
}

TEST(WildTrafficTest, SweepCoversTheGridSchemeMajor) {
  wild_traffic_config config = small_config();
  config.opportunities = 4;
  config.schemes = {phy::erasure_scheme::none, phy::erasure_scheme::fountain};
  config.duty_cycles = {1.0, 0.5};
  const wild_result result = run_wild_traffic(config);
  ASSERT_EQ(result.cells.size(), 4u);
  EXPECT_EQ(result.cells[0].scheme, phy::erasure_scheme::none);
  EXPECT_EQ(result.cells[0].duty_cycle, 1.0);
  EXPECT_EQ(result.cells[1].duty_cycle, 0.5);
  EXPECT_EQ(result.cells[3].scheme, phy::erasure_scheme::fountain);
  EXPECT_EQ(result.cells[3].duty_cycle, 0.5);
}

TEST(WildTrafficTest, SweepIsThreadCountInvariant) {
  wild_traffic_config config = small_config();
  config.opportunities = 6;
  config.schemes = {phy::erasure_scheme::fountain};
  config.duty_cycles = {1.0, 0.5};
  config.trials = 2;
  wild_result serial, parallel;
  {
    scoped_thread_count threads(1);
    serial = run_wild_traffic(config);
  }
  {
    scoped_thread_count threads(4);
    parallel = run_wild_traffic(config);
  }
  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial.cells[i].mean.goodput_bps,
                     parallel.cells[i].mean.goodput_bps);
    EXPECT_DOUBLE_EQ(serial.cells[i].mean.blocks_decoded,
                     parallel.cells[i].mean.blocks_decoded);
    EXPECT_DOUBLE_EQ(serial.cells[i].mean.polls_issued,
                     parallel.cells[i].mean.polls_issued);
  }
}

TEST(WildTrafficTest, DegenerateConfigsThrow) {
  {
    wild_traffic_config config = small_config();
    config.trials = 0;
    EXPECT_THROW(run_wild_traffic(config), std::invalid_argument);
  }
  {
    wild_traffic_config config = small_config();
    config.opportunities = 0;
    EXPECT_THROW(run_wild_traffic(config), std::invalid_argument);
  }
  {
    wild_traffic_config config = small_config();
    config.schemes.clear();
    EXPECT_THROW(run_wild_traffic(config), std::invalid_argument);
  }
  {
    wild_traffic_config config = small_config();
    config.duty_cycles = {0.5, 0.0};
    EXPECT_THROW(run_wild_traffic(config), std::invalid_argument);
  }
  {
    wild_traffic_config config = small_config();
    config.duty_cycles = {1.5};
    EXPECT_THROW(run_wild_traffic(config), std::invalid_argument);
  }
  {
    wild_traffic_config config = small_config();
    config.mean_burst_polls = 0.0;
    EXPECT_THROW(run_wild_traffic(config), std::invalid_argument);
  }
  {
    // Zero-payload code geometry surfaces on the caller's thread.
    wild_traffic_config config = small_config();
    config.coding.symbol_bytes = 0;
    EXPECT_THROW(run_wild_traffic(config), std::invalid_argument);
  }
  {
    // RS block that cannot fit the GF(256) field.
    wild_traffic_config config = small_config();
    config.coding.block_symbols = 300;
    config.schemes = {phy::erasure_scheme::reed_solomon};
    EXPECT_THROW(run_wild_traffic(config), std::invalid_argument);
  }
  {
    wild_traffic_config config = small_config();
    config.link.decoder.fb_taps = 0;  // scenario-level violation
    EXPECT_THROW(run_wild_traffic(config), std::invalid_argument);
  }
}

TEST(FaultCampaignHardeningTest, DegenerateCampaignsThrow) {
  // The same guard rail on the PR 1 campaign: the payload override used
  // to bypass validate_or_throw's zero_payload check entirely.
  campaign_config config;
  config.link.excitation.ppdu_bytes = 1500;
  config.opportunities = 2;
  {
    campaign_config bad = config;
    bad.payload_bits = 0;
    EXPECT_THROW(run_fault_campaign(bad), std::invalid_argument);
    EXPECT_THROW(run_campaign_arm(bad, impair::fault_class::none, 0.0, false),
                 std::invalid_argument);
  }
  {
    campaign_config bad = config;
    bad.opportunities = 0;
    EXPECT_THROW(run_fault_campaign(bad), std::invalid_argument);
  }
  {
    campaign_config bad = config;
    bad.severities.clear();
    EXPECT_THROW(run_fault_campaign(bad), std::invalid_argument);
  }
}

}  // namespace
}  // namespace backfi::sim
