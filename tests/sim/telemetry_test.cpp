// Observability contract of the sim layer: config validation at entry
// points, deterministic collector merge across thread counts, the
// null-collector bit-identity guarantee, and the link_report aliases.
#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/collector.h"
#include "obs/export.h"
#include "sim/backscatter_sim.h"
#include "sim/parallel.h"

namespace backfi::sim {
namespace {

scenario_config cheap_scenario() {
  scenario_config c;
  c.seed = 42;
  c.tag_distance_m = 4.5;
  c.payload_bits = 400;
  return c;
}

// --- scenario_config::validate --------------------------------------------

TEST(ScenarioValidate, DefaultConfigIsUsable) {
  EXPECT_EQ(scenario_config{}.validate(), config_error::none);
  EXPECT_EQ(cheap_scenario().validate(), config_error::none);
}

TEST(ScenarioValidate, ReportsEachViolation) {
  {
    scenario_config c = cheap_scenario();
    c.payload_bits = 0;
    EXPECT_EQ(c.validate(), config_error::zero_payload);
  }
  {
    scenario_config c = cheap_scenario();
    c.tag_distance_m = -1.0;
    EXPECT_EQ(c.validate(), config_error::bad_distance);
  }
  {
    scenario_config c = cheap_scenario();
    c.tag_distance_m = std::numeric_limits<double>::infinity();
    EXPECT_EQ(c.validate(), config_error::bad_distance);
  }
  {
    scenario_config c = cheap_scenario();
    c.tag.rate.symbol_rate_hz = 0.0;
    EXPECT_EQ(c.validate(), config_error::bad_symbol_rate);
  }
  {
    scenario_config c = cheap_scenario();
    c.tag.rate.symbol_rate_hz = sample_rate_hz;  // above Nyquist
    EXPECT_EQ(c.validate(), config_error::bad_symbol_rate);
  }
  {
    scenario_config c = cheap_scenario();
    c.decoder.fb_taps = 0;
    EXPECT_EQ(c.validate(), config_error::zero_channel_taps);
  }
  {
    scenario_config c = cheap_scenario();
    c.decoder.sync_threshold = 1.5;
    EXPECT_EQ(c.validate(), config_error::bad_sync_threshold);
  }
  {
    scenario_config c = cheap_scenario();
    c.excitation.n_ppdus = 0;
    EXPECT_EQ(c.validate(), config_error::empty_excitation);
  }
  {
    scenario_config c = cheap_scenario();
    c.budget.bandwidth_hz = 0.0;
    EXPECT_EQ(c.validate(), config_error::bad_bandwidth);
  }
}

TEST(ScenarioValidate, EntryPointsThrowWithCallSiteAndReason) {
  scenario_config c = cheap_scenario();
  c.payload_bits = 0;
  try {
    (void)packet_error_rate(c, 4);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("packet_error_rate"), std::string::npos) << what;
    EXPECT_NE(what.find("zero_payload"), std::string::npos) << what;
  }
  EXPECT_THROW((void)run_backscatter_trial(c), std::invalid_argument);
}

TEST(ScenarioValidate, ErrorNamesAreStable) {
  EXPECT_STREQ(to_string(config_error::none), "none");
  EXPECT_STREQ(to_string(config_error::bad_symbol_rate), "bad_symbol_rate");
  EXPECT_STREQ(to_string(config_error::bad_bandwidth), "bad_bandwidth");
}

// --- Telemetry determinism ------------------------------------------------

std::string telemetry_json_at(std::size_t threads, double* per_out) {
  scoped_thread_count guard(threads);
  obs::collector collector;
  scenario_config c = cheap_scenario();
  c.collector = &collector;
  const double per = packet_error_rate(c, 12);
  if (per_out) *per_out = per;
  // Timings are wall-clock and exempt from the determinism contract.
  return obs::to_json(collector.registry(), {.include_timings = false});
}

TEST(TelemetryDeterminism, MergedRegistryBitIdenticalAcrossThreadCounts) {
  double per1 = 0.0, per2 = 0.0, per4 = 0.0;
  const std::string json1 = telemetry_json_at(1, &per1);
  const std::string json2 = telemetry_json_at(2, &per2);
  const std::string json4 = telemetry_json_at(4, &per4);
  EXPECT_EQ(per1, per2);
  EXPECT_EQ(per1, per4);
  EXPECT_EQ(json1, json2);
  EXPECT_EQ(json1, json4);
  // The merged counters describe the whole run, not one shard.
  auto parsed = obs::from_json(json1);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->get_counter("sim.trials").value, 12u);
}

TEST(TelemetryDeterminism, NullCollectorLeavesTrialResultBitIdentical) {
  const scenario_config plain = cheap_scenario();
  scenario_config observed = cheap_scenario();
  obs::collector collector;
  observed.collector = &collector;

  const trial_result a = run_backscatter_trial(plain);
  const trial_result b = run_backscatter_trial(observed);

  EXPECT_EQ(a.woke, b.woke);
  EXPECT_EQ(a.sync_found, b.sync_found);
  EXPECT_EQ(a.decoded, b.decoded);
  EXPECT_EQ(a.crc_ok, b.crc_ok);
  EXPECT_EQ(a.failure, b.failure);
  EXPECT_EQ(a.bit_errors, b.bit_errors);
  EXPECT_EQ(a.raw_symbol_errors, b.raw_symbol_errors);
  EXPECT_EQ(a.payload_symbols, b.payload_symbols);
  EXPECT_EQ(a.link.post_mrc_snr_db, b.link.post_mrc_snr_db);
  EXPECT_EQ(a.link.expected_snr_db, b.link.expected_snr_db);
  EXPECT_EQ(a.link.residual_si_over_noise_db, b.link.residual_si_over_noise_db);
  EXPECT_EQ(a.link.analog_depth_db, b.link.analog_depth_db);
  EXPECT_EQ(a.link.total_depth_db, b.link.total_depth_db);
  EXPECT_EQ(a.link.sync_correlation, b.link.sync_correlation);
  EXPECT_EQ(a.link.evm_rms, b.link.evm_rms);
  EXPECT_EQ(a.tag_energy_pj, b.tag_energy_pj);
  EXPECT_EQ(a.effective_throughput_bps, b.effective_throughput_bps);
  // And the attached collector actually saw the trial.
  EXPECT_EQ(collector.registry().counters().at("sim.trials").value, 1u);
}

TEST(TelemetryDeterminism, PacketErrorRateAnchorUnchangedWithCollector) {
  scoped_thread_count threads(4);
  obs::collector collector;
  scenario_config c = cheap_scenario();
  c.collector = &collector;
  // Pre-observability serial anchor: 9 of 24 packets failed at 4.5 m.
  EXPECT_EQ(packet_error_rate(c, 24), 0.375);
}

// --- Delegated sub-config validation --------------------------------------

TEST(ScenarioValidate, DelegatesToSubConfigValidators) {
  {
    scenario_config c = cheap_scenario();
    c.decoder.ridge = -1.0;  // not one of the two legacy decoder values
    EXPECT_EQ(c.validate(), config_error::bad_decoder_config);
  }
  {
    scenario_config c = cheap_scenario();
    c.chain.adc.bits = 0;
    EXPECT_EQ(c.validate(), config_error::bad_chain_config);
    EXPECT_THROW((void)run_backscatter_trial(c), std::invalid_argument);
  }
  EXPECT_STREQ(to_string(config_error::bad_decoder_config),
               "bad_decoder_config");
  EXPECT_STREQ(to_string(config_error::bad_chain_config), "bad_chain_config");
}

// --- parallel API additions -----------------------------------------------

TEST(ParallelApi, ThreadCountAliasAgrees) {
  EXPECT_EQ(thread_count(), max_threads());
  scoped_thread_count guard(3);
  EXPECT_EQ(thread_count(), 3u);
  EXPECT_EQ(max_threads(), 3u);
}

TEST(ParallelApi, MapReduceOverloadFoldsOrderedResults) {
  scoped_thread_count guard(4);
  const std::size_t sum = parallel_map(
      100, [](std::size_t i) { return i; },
      [](const std::vector<std::size_t>& v) {
        std::size_t total = 0;
        for (const std::size_t x : v) total += x;
        return total;
      });
  EXPECT_EQ(sum, 4950u);
}

TEST(ParallelApi, MapDeducesElementTypeWithoutExplicitArgument) {
  const auto doubled = parallel_map(8, [](std::size_t i) { return 2.0 * i; });
  static_assert(std::is_same_v<decltype(doubled), const std::vector<double>>);
  ASSERT_EQ(doubled.size(), 8u);
  EXPECT_EQ(doubled[7], 14.0);
}

}  // namespace
}  // namespace backfi::sim
