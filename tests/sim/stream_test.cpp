// Streaming receive pipeline: bit-identity to the batch path, thread/chunk
// invariance, drift decode, backpressure accounting and config validation
// (ISSUE 8 acceptance criteria).
#include "sim/stream_sim.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "dsp/ring_buffer.h"
#include "obs/collector.h"

namespace backfi::sim {
namespace {

stream_scenario_config fast_stream_scenario(std::uint64_t seed,
                                            std::size_t n_packets = 4) {
  stream_scenario_config cfg;
  cfg.scenario.excitation.ppdu_bytes = 2000;
  cfg.scenario.payload_bits = 300;
  cfg.scenario.tag.rate = {tag::tag_modulation::qpsk, phy::code_rate::half,
                           1e6};
  cfg.scenario.tag_distance_m = 2.0;
  cfg.scenario.seed = seed;
  cfg.n_packets = n_packets;
  return cfg;
}

void expect_same_outcomes(const stream_trial_result& a,
                          const stream_trial_result& b, const char* what) {
  ASSERT_EQ(a.packets.size(), b.packets.size()) << what;
  for (std::size_t i = 0; i < a.packets.size(); ++i) {
    const stream_packet_outcome& pa = a.packets[i];
    const stream_packet_outcome& pb = b.packets[i];
    EXPECT_EQ(pa.woke, pb.woke) << what << " packet " << i;
    EXPECT_EQ(pa.sync_found, pb.sync_found) << what << " packet " << i;
    EXPECT_EQ(pa.decoded, pb.decoded) << what << " packet " << i;
    EXPECT_EQ(pa.crc_ok, pb.crc_ok) << what << " packet " << i;
    EXPECT_EQ(pa.bit_errors, pb.bit_errors) << what << " packet " << i;
    ASSERT_EQ(pa.payload.size(), pb.payload.size()) << what << " packet " << i;
    for (std::size_t k = 0; k < pa.payload.size(); ++k)
      ASSERT_EQ(pa.payload[k], pb.payload[k])
          << what << " packet " << i << " bit " << k;
  }
  EXPECT_EQ(a.crc_ok, b.crc_ok) << what;
  EXPECT_EQ(a.bit_errors_total, b.bit_errors_total) << what;
}

// Acceptance anchor: on a static channel the streaming pipeline's decoded
// bit-stream is bit-identical to the per-packet batch reference — at the
// pinned trial seeds 1/2/3/7 plus the 42/43 default anchors.
TEST(StreamBitIdentity, MatchesBatchReferenceOnStaticChannels) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 7u, 42u, 43u}) {
    const stream_scenario_config cfg = fast_stream_scenario(seed);
    const stream_trial_result streamed = run_stream_trial(cfg);
    const stream_trial_result batch = run_stream_batch_reference(cfg);
    expect_same_outcomes(streamed, batch,
                         ("seed " + std::to_string(seed)).c_str());
    EXPECT_EQ(streamed.stats.packets_in, cfg.n_packets);
    EXPECT_EQ(streamed.stats.packets_dropped, 0u);
  }
}

TEST(StreamBitIdentity, TwoThreadPipelineMatchesInline) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 7u, 42u, 43u}) {
    stream_scenario_config cfg = fast_stream_scenario(seed);
    cfg.threads = 1;
    const stream_trial_result one = run_stream_trial(cfg);
    cfg.threads = 2;
    const stream_trial_result two = run_stream_trial(cfg);
    expect_same_outcomes(one, two, ("seed " + std::to_string(seed)).c_str());
    EXPECT_EQ(two.stats.packets_dropped, 0u);  // block policy is lossless
  }
}

TEST(StreamBitIdentity, FeedChunkingIsInvariant) {
  stream_scenario_config cfg = fast_stream_scenario(7);
  cfg.feed_chunk_samples = 0;  // all at once
  const stream_trial_result whole = run_stream_trial(cfg);
  cfg.feed_chunk_samples = 997;  // odd chunk, packets split across feeds
  const stream_trial_result chunked = run_stream_trial(cfg);
  cfg.feed_chunk_samples = 1u << 15;
  const stream_trial_result large = run_stream_trial(cfg);
  expect_same_outcomes(whole, chunked, "chunk 997");
  expect_same_outcomes(whole, large, "chunk 32768");
}

// The streaming contract holds on ANY capture: the drifting-channel stream
// decodes identically through the pipeline and the batch reference too.
TEST(StreamBitIdentity, HoldsUnderDriftingChannels) {
  stream_scenario_config cfg = fast_stream_scenario(3, 6);
  cfg.forward_drift.coherence_packets = 8.0;
  cfg.lo_drift.step_std_rad = 0.05;
  const stream_trial_result streamed = run_stream_trial(cfg);
  const stream_trial_result batch = run_stream_batch_reference(cfg);
  expect_same_outcomes(streamed, batch, "drifted capture");
  cfg.threads = 2;
  const stream_trial_result two = run_stream_trial(cfg);
  expect_same_outcomes(streamed, two, "drifted capture, 2 threads");
}

// Acceptance anchor: a >= 32-packet continuous capture with inter-packet
// channel and LO phase drift decodes end to end with bounded queue depth.
TEST(StreamDrift, DecodesThirtyTwoPacketCaptureWithDrift) {
  stream_scenario_config cfg = fast_stream_scenario(1, 32);
  cfg.forward_drift.coherence_packets = 16.0;
  cfg.lo_drift.step_std_rad = 0.02;
  cfg.threads = 2;
  cfg.queue_capacity = 4;
  const stream_trial_result r = run_stream_trial(cfg);

  ASSERT_EQ(r.packets.size(), 32u);
  EXPECT_EQ(r.stats.packets_in, 32u);
  EXPECT_EQ(r.stats.packets_decoded, 32u);  // block policy: nothing lost
  EXPECT_EQ(r.stats.packets_dropped, 0u);
  // Per-packet re-estimation absorbs the drift: the stream stays decodable.
  EXPECT_GE(r.crc_ok, 28u);
  // Queue depth stays bounded by the configured ring capacity.
  EXPECT_LE(r.stats.queue_high_water, dsp::ring_capacity_for(4));
}

TEST(StreamDrift, DriftChangesTheCaptureButNotTheSchedule) {
  const stream_scenario_config still = fast_stream_scenario(5, 6);
  stream_scenario_config drifting = still;
  drifting.forward_drift.coherence_packets = 4.0;
  drifting.lo_drift.step_std_rad = 0.1;

  const stream_capture a = build_stream_capture(still);
  const stream_capture b = build_stream_capture(drifting);

  ASSERT_EQ(a.schedule.size(), b.schedule.size());
  for (std::size_t i = 0; i < a.schedule.size(); ++i) {
    EXPECT_EQ(a.schedule[i].begin, b.schedule[i].begin);
    EXPECT_EQ(a.schedule[i].end, b.schedule[i].end);
    EXPECT_EQ(a.schedule[i].wake_end, b.schedule[i].wake_end);
    EXPECT_EQ(a.schedule[i].silent_end, b.schedule[i].silent_end);
  }
  // The transmit timeline is the reader's own; only the receive capture
  // sees the drifted channel.
  ASSERT_EQ(a.x.size(), b.x.size());
  // Static stream holds h_f exactly; drifted stream has walked away.
  ASSERT_EQ(a.final_h_f.size(), b.final_h_f.size());
  bool taps_differ = false;
  for (std::size_t k = 0; k < a.final_h_f.size(); ++k)
    if (a.final_h_f[k] != b.final_h_f[k]) taps_differ = true;
  EXPECT_TRUE(taps_differ);
  EXPECT_DOUBLE_EQ(a.final_lo_phase_rad, 0.0);
  EXPECT_NE(b.final_lo_phase_rad, 0.0);
}

TEST(StreamDrift, CaptureIsDeterministicPerSeed) {
  stream_scenario_config cfg = fast_stream_scenario(9, 3);
  cfg.forward_drift.coherence_packets = 8.0;
  cfg.lo_drift.step_std_rad = 0.05;
  const stream_capture a = build_stream_capture(cfg);
  const stream_capture b = build_stream_capture(cfg);
  ASSERT_EQ(a.y.size(), b.y.size());
  for (std::size_t k = 0; k < a.y.size(); ++k) ASSERT_EQ(a.y[k], b.y[k]);
  EXPECT_DOUBLE_EQ(a.final_lo_phase_rad, b.final_lo_phase_rad);
}

TEST(StreamSession, DropPolicyPreservesPacketAccounting) {
  stream_scenario_config cfg = fast_stream_scenario(2, 12);
  cfg.threads = 2;
  cfg.queue_capacity = 1;
  cfg.overflow = reader::stream_overflow::drop;
  const stream_trial_result r = run_stream_trial(cfg);

  // Drops are execution-dependent, but the accounting invariant is not:
  // every fed packet is either decoded or counted as dropped.
  EXPECT_EQ(r.stats.packets_in, 12u);
  EXPECT_EQ(r.stats.packets_decoded + r.stats.packets_dropped, 12u);
  std::size_t dropped_flags = 0;
  for (const stream_packet_outcome& p : r.packets)
    if (p.dropped) ++dropped_flags;
  EXPECT_EQ(dropped_flags, r.stats.packets_dropped);
}

// Regression for a shutdown race: finish() pushes the final packets and
// only then release-stores producer_done_; a worker whose try_pop failed
// just before those pushes must re-drain the capture ring after observing
// the flag instead of exiting with packets still queued (which left their
// results default-constructed under the lossless block policy). The lost
// interleaving needs the worker preempted between its failed pop and the
// flag check, so no test can force it deterministically — this pins the
// shutdown-drain behavior by pushing every packet from finish() itself
// against an idle-spinning worker, repeatedly (TSan and the acquire/
// release pairing cover the ordering argument).
TEST(StreamSession, FinishDrainsPacketsPushedAtShutdown) {
  stream_scenario_config cfg = fast_stream_scenario(11, 2);
  const stream_capture cap = build_stream_capture(cfg);
  const stream_trial_result ref = run_stream_trial(cfg);  // inline reference

  reader::stream_config scfg;
  scfg.tag = cfg.scenario.tag;
  scfg.decoder = cfg.scenario.decoder;
  scfg.chain = cfg.scenario.chain;
  scfg.threads = 2;
  scfg.queue_capacity = 4;
  scfg.emit_stream_metrics = false;

  for (int rep = 0; rep < 100; ++rep) {
    reader::stream_session session(cap.x, cap.y, cap.schedule, scfg);
    session.finish();  // pushes every packet, then signals the worker
    EXPECT_EQ(session.stats().packets_decoded, cap.schedule.size());
    ASSERT_EQ(session.results().size(), ref.packets.size());
    for (std::size_t i = 0; i < ref.packets.size(); ++i) {
      const reader::stream_packet_result& r = session.results()[i];
      EXPECT_FALSE(r.dropped) << "rep " << rep << " packet " << i;
      EXPECT_EQ(r.decoded.decoded, ref.packets[i].decoded)
          << "rep " << rep << " packet " << i;
      EXPECT_EQ(r.decoded.crc_ok, ref.packets[i].crc_ok)
          << "rep " << rep << " packet " << i;
      ASSERT_EQ(r.decoded.payload, ref.packets[i].payload)
          << "rep " << rep << " packet " << i;
    }
  }
}

TEST(StreamSession, MalformedScheduleThrows) {
  const cvec x(64, cplx{0.0, 0.0});
  const cvec y(64, cplx{0.0, 0.0});
  reader::stream_config cfg;

  // begin >= end
  reader::stream_packet bad{.begin = 10, .end = 10, .wake_end = 10,
                            .silent_end = 10, .payload_bits = 8};
  EXPECT_THROW(reader::stream_session(x, y, std::span(&bad, 1), cfg),
               std::invalid_argument);
  // end past the capture
  bad = {.begin = 0, .end = 100, .wake_end = 4, .silent_end = 8,
         .payload_bits = 8};
  EXPECT_THROW(reader::stream_session(x, y, std::span(&bad, 1), cfg),
               std::invalid_argument);
  // zero payload
  bad = {.begin = 0, .end = 32, .wake_end = 4, .silent_end = 8,
         .payload_bits = 0};
  EXPECT_THROW(reader::stream_session(x, y, std::span(&bad, 1), cfg),
               std::invalid_argument);
  // capture length mismatch
  const cvec y_short(32, cplx{0.0, 0.0});
  reader::stream_packet ok{.begin = 0, .end = 32, .wake_end = 4,
                           .silent_end = 8, .payload_bits = 8};
  EXPECT_THROW(reader::stream_session(x, y_short, std::span(&ok, 1), cfg),
               std::invalid_argument);
}

TEST(StreamValidate, TypedErrorsAndThrowingEntryPoints) {
  stream_scenario_config cfg = fast_stream_scenario(1, 2);
  EXPECT_EQ(cfg.validate(), config_error::none);

  stream_scenario_config bad = cfg;
  bad.n_packets = 0;
  EXPECT_EQ(bad.validate(), config_error::zero_stream_packets);
  EXPECT_STREQ(to_string(bad.validate()), "zero_stream_packets");

  bad = cfg;
  bad.threads = 3;
  EXPECT_EQ(bad.validate(), config_error::bad_stream_threads);

  bad = cfg;
  bad.queue_capacity = 0;
  EXPECT_EQ(bad.validate(), config_error::bad_stream_queue);

  bad = cfg;
  bad.lo_drift.step_std_rad = -0.1;
  EXPECT_EQ(bad.validate(), config_error::bad_drift);

  // Scenario violations surface through the same validator first.
  bad = cfg;
  bad.scenario.payload_bits = 0;
  EXPECT_EQ(bad.validate(), config_error::zero_payload);

  bad = cfg;
  bad.threads = 5;
  try {
    run_stream_trial(bad);
    FAIL() << "run_stream_trial accepted an invalid config";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("run_stream_trial"), std::string::npos);
    EXPECT_NE(what.find("bad_stream_threads"), std::string::npos);
  }
  EXPECT_THROW(build_stream_capture(bad), std::invalid_argument);
  EXPECT_THROW(run_stream_batch_reference(bad), std::invalid_argument);
}

TEST(StreamMetrics, SessionEmitsStreamCountersAndGauges) {
  obs::collector collector;
  stream_scenario_config cfg = fast_stream_scenario(1, 4);
  cfg.scenario.collector = &collector;
  const stream_trial_result r = run_stream_trial(cfg);

  const auto& counters = collector.registry().counters();
  ASSERT_TRUE(counters.contains("reader.stream.packets_in"));
  EXPECT_EQ(counters.at("reader.stream.packets_in").value, 4u);
  EXPECT_EQ(counters.at("reader.stream.packets_decoded").value, 4u);
  EXPECT_EQ(counters.at("reader.stream.crc_ok").value, r.crc_ok);

  const auto& gauges = collector.registry().gauges();
  ASSERT_TRUE(gauges.contains("runtime.stream.queue_high_water"));
  EXPECT_TRUE(gauges.at("runtime.stream.queue_high_water").set);
  ASSERT_TRUE(gauges.contains("runtime.stream.latency_us_max"));
  EXPECT_GT(gauges.at("runtime.stream.latency_us_max").value, 0.0);
}

// 2-thread probe confinement: the chain/decoder probes recorded on the
// worker thread land on the caller's collector after finish() merges.
TEST(StreamMetrics, WorkerProbesMergeIntoCallerCollector) {
  obs::collector one_thread;
  obs::collector two_thread;
  stream_scenario_config cfg = fast_stream_scenario(2, 4);
  cfg.scenario.collector = &one_thread;
  run_stream_trial(cfg);
  cfg.threads = 2;
  cfg.scenario.collector = &two_thread;
  run_stream_trial(cfg);

  // Deterministic counters (typed probes + stream counters) are identical
  // across topologies; only timing/runtime gauges may differ.
  const auto& a = one_thread.registry().counters();
  const auto& b = two_thread.registry().counters();
  ASSERT_EQ(a.size(), b.size());
  for (auto ia = a.begin(), ib = b.begin(); ia != a.end(); ++ia, ++ib) {
    EXPECT_EQ(ia->first, ib->first);
    EXPECT_EQ(ia->second.value, ib->second.value) << ia->first;
  }
}

}  // namespace
}  // namespace backfi::sim
