#include "sim/backscatter_sim.h"

#include <gtest/gtest.h>

namespace backfi::sim {
namespace {

scenario_config fast_scenario() {
  scenario_config cfg;
  cfg.excitation.ppdu_bytes = 2000;
  cfg.payload_bits = 300;
  cfg.tag.rate = {tag::tag_modulation::qpsk, phy::code_rate::half, 1e6};
  cfg.tag_distance_m = 2.0;
  cfg.seed = 1;
  return cfg;
}

TEST(BackscatterSimTest, FullExchangeSucceedsAtShortRange) {
  const auto r = run_backscatter_trial(fast_scenario());
  EXPECT_TRUE(r.woke);
  EXPECT_TRUE(r.sync_found);
  ASSERT_TRUE(r.crc_ok);
  EXPECT_EQ(r.bit_errors, 0u);
  EXPECT_GT(r.effective_throughput_bps, 0.0);
  EXPECT_GT(r.tag_energy_pj, 0.0);
}

TEST(BackscatterSimTest, DeterministicPerSeed) {
  const auto a = run_backscatter_trial(fast_scenario());
  const auto b = run_backscatter_trial(fast_scenario());
  EXPECT_EQ(a.crc_ok, b.crc_ok);
  EXPECT_DOUBLE_EQ(a.link.post_mrc_snr_db, b.link.post_mrc_snr_db);
  EXPECT_DOUBLE_EQ(a.link.expected_snr_db, b.link.expected_snr_db);
}

TEST(BackscatterSimTest, MeasuredSnrBelowButNearOracle) {
  // Paper Fig. 11a: imperfect cancellation/estimation costs a couple of dB
  // against the VNA-predicted SNR.
  double total_gap = 0.0;
  int n = 0;
  for (int t = 0; t < 8; ++t) {
    scenario_config cfg = fast_scenario();
    cfg.seed = 100 + t;
    const auto r = run_backscatter_trial(cfg);
    if (!r.sync_found) continue;
    total_gap += r.link.expected_snr_db - r.link.post_mrc_snr_db;
    ++n;
  }
  ASSERT_GT(n, 4);
  const double mean_gap = total_gap / n;
  EXPECT_GT(mean_gap, 0.0);
  EXPECT_LT(mean_gap, 6.0);
}

TEST(BackscatterSimTest, ResidualSiWithinFewDbOfNoise) {
  scenario_config cfg = fast_scenario();
  cfg.seed = 21;
  const auto r = run_backscatter_trial(cfg);
  ASSERT_TRUE(r.woke);
  // Paper: ~1.7 dB residue after cancellation.
  EXPECT_LT(r.link.residual_si_over_noise_db, 4.0);
  EXPECT_GT(r.link.total_depth_db, 50.0);
}

TEST(BackscatterSimTest, SnrFallsWithDistance) {
  double near_snr = 0.0, far_snr = 0.0;
  for (int t = 0; t < 4; ++t) {
    scenario_config cfg = fast_scenario();
    cfg.seed = 300 + t;
    cfg.tag_distance_m = 1.0;
    near_snr += run_backscatter_trial(cfg).link.post_mrc_snr_db;
    cfg.tag_distance_m = 4.0;
    far_snr += run_backscatter_trial(cfg).link.post_mrc_snr_db;
  }
  EXPECT_GT(near_snr, far_snr + 4 * 10.0);  // >10 dB/trial difference
}

TEST(BackscatterSimTest, TagDoesNotWakeFarBeyondSensitivity) {
  scenario_config cfg = fast_scenario();
  cfg.tag_distance_m = 60.0;
  const auto r = run_backscatter_trial(cfg);
  EXPECT_FALSE(r.woke);
  EXPECT_FALSE(r.crc_ok);
}

TEST(BackscatterSimTest, FailureInjectionNoSilentAdaptation) {
  // Bypassing the digital canceller leaves residual SI that degrades or
  // kills decoding relative to the full chain.
  scenario_config with = fast_scenario();
  with.seed = 50;
  scenario_config without = with;
  without.chain.enable_digital = false;
  const auto r_with = run_backscatter_trial(with);
  const auto r_without = run_backscatter_trial(without);
  ASSERT_TRUE(r_with.crc_ok);
  EXPECT_GT(r_with.link.post_mrc_snr_db, r_without.link.post_mrc_snr_db + 3.0);
}

TEST(BackscatterSimTest, PacketErrorRateBoundsAndMonotonicity) {
  scenario_config cfg = fast_scenario();
  cfg.seed = 70;
  const double near_per = packet_error_rate(cfg, 4);
  cfg.tag_distance_m = 30.0;  // far outside the usable range
  const double far_per = packet_error_rate(cfg, 4);
  EXPECT_LE(near_per, 0.25);
  EXPECT_DOUBLE_EQ(far_per, 1.0);
}

TEST(BackscatterSimTest, OracleSnrScalesWithSymbolLength) {
  // Doubling the symbol period doubles the MRC window: +3 dB.
  scenario_config slow = fast_scenario();
  slow.tag.rate.symbol_rate_hz = 5e5;
  slow.excitation.n_ppdus = 2;  // halved symbol rate needs a longer burst
  const auto r_fast = run_backscatter_trial(fast_scenario());
  const auto r_slow = run_backscatter_trial(slow);
  ASSERT_TRUE(r_fast.woke);
  ASSERT_TRUE(r_slow.woke);
  // Same seed -> same channels; the guard subtraction makes it not exactly
  // 3 dB, allow slack.
  EXPECT_NEAR(r_slow.link.expected_snr_db - r_fast.link.expected_snr_db, 3.0, 1.5);
}

}  // namespace
}  // namespace backfi::sim
