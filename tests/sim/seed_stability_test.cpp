// Pins the flattened (point, trial) -> seed mapping the sweep scheduler
// relies on. Every Monte-Carlo evaluator derives per-trial seeds through
// sim/scheduler.h's derive_trial_seed / derive_coexistence_seed; if either
// formula (or the flattening order) drifts, every pinned PER and
// throughput anchor in the repo silently changes. This file fails first,
// with a message that names the actual contract.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/backscatter_sim.h"
#include "sim/coexistence.h"
#include "sim/parallel.h"
#include "sim/rate_adaptation.h"
#include "sim/scheduler.h"

namespace backfi::sim {
namespace {

scenario_config anchor_scenario(double distance_m) {
  scenario_config c;
  c.seed = 42;
  c.tag_distance_m = distance_m;
  c.payload_bits = 400;
  return c;
}

TEST(SeedStabilityTest, DerivationFormulasArePinned) {
  // The PR 2 formulas verbatim: base * 1000003 + t and base * 7919 + t.
  EXPECT_EQ(derive_trial_seed(0, 0), 0u);
  EXPECT_EQ(derive_trial_seed(1, 0), 1000003u);
  EXPECT_EQ(derive_trial_seed(42, 0), 42000126u);
  EXPECT_EQ(derive_trial_seed(42, 23), 42000149u);
  EXPECT_EQ(derive_coexistence_seed(5, 0), 39595u);
  EXPECT_EQ(derive_coexistence_seed(5, 11), 39606u);
  // Distinct multipliers: the tag and client Monte-Carlo streams never
  // collide for small bases and trial indices.
  EXPECT_NE(derive_trial_seed(1, 0), derive_coexistence_seed(1, 0));
  // constexpr: usable as compile-time constants.
  static_assert(derive_trial_seed(42, 23) == 42ULL * 1000003ULL + 23ULL);
  static_assert(derive_coexistence_seed(5, 11) == 5ULL * 7919ULL + 11ULL);
}

TEST(SeedStabilityTest, FlattenedSeedOrderIsThreadCountInvariant) {
  // The scheduler maps flattened index -> seed identically at any thread
  // count: slot i always receives derive_trial_seed(base, i), regardless
  // of which lane ran it or in what order.
  const std::uint64_t base = 42;
  const std::size_t n = 257;
  std::vector<std::uint64_t> reference(n);
  for (std::size_t i = 0; i < n; ++i) reference[i] = derive_trial_seed(base, i);
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    scoped_thread_count guard(threads);
    std::vector<std::uint64_t> observed(n, 0);
    sweep_for(n, [&](std::size_t i) {
      observed[i] = derive_trial_seed(base, i);
    });
    EXPECT_EQ(observed, reference) << "threads=" << threads;
  }
}

TEST(SeedStabilityTest, FlatteningPreservesPerPointResults) {
  // evaluate_link flattens the (point x trial) grid to one pool with
  // index i = point * trials + trial; each point's PER must equal the
  // standalone packet_error_rate of that point's scenario — i.e. the
  // flattening changed the schedule, never the per-point seed streams.
  scoped_thread_count threads(4);
  scenario_config base;
  base.seed = 7;
  base.payload_bits = 200;
  const double distance_m = 1.0;
  const int trials = 2;
  const auto evals = evaluate_link(base, distance_m, trials);
  const auto points = all_operating_points();
  ASSERT_EQ(evals.size(), points.size());
  for (std::size_t p = 0; p < points.size(); p += 7) {  // sampled: cost
    const scenario_config config =
        scenario_for_point(base, points[p].rate, distance_m);
    EXPECT_EQ(evals[p].packet_error_rate, packet_error_rate(config, trials))
        << "point " << p;
  }
}

TEST(SeedStabilityTest, PinnedAnchorsHoldAtEightThreads) {
  // The PR 4 pinned literals re-checked beyond the usual 1/2/4 sweep: a
  // scheduler that mis-partitions lanes at higher thread counts would
  // surface here first.
  scoped_thread_count threads(8);
  EXPECT_EQ(packet_error_rate(anchor_scenario(4.5), 24), 0.375);
  EXPECT_EQ(packet_error_rate(anchor_scenario(4.0), 24), 2.0 / 24.0);
  coexistence_config c;
  c.seed = 5;
  c.ap_client_distance_m = 8.0;
  EXPECT_EQ(client_throughput_bps(c, 12), 54e6 * 11.0 / 12.0);
}

}  // namespace
}  // namespace backfi::sim
