#include "sim/scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/collector.h"
#include "obs/export.h"
#include "sim/parallel.h"

namespace backfi::sim {
namespace {

TEST(SchedulerTest, ChunkSizeIsAPureFunctionOfTaskCount) {
  // Explicit chunk option always wins.
  EXPECT_EQ(sweep_chunk_size(1000, 7), 7u);
  EXPECT_EQ(sweep_chunk_size(0, 3), 3u);
  // Automatic policy: max(1, min(64, n / 64)). These are pinned because
  // the sim.scheduler.chunks counter — which deterministic exports compare
  // across thread counts — is derived from them.
  EXPECT_EQ(sweep_chunk_size(0, 0), 1u);
  EXPECT_EQ(sweep_chunk_size(63, 0), 1u);
  EXPECT_EQ(sweep_chunk_size(64, 0), 1u);
  EXPECT_EQ(sweep_chunk_size(128, 0), 2u);
  EXPECT_EQ(sweep_chunk_size(4096, 0), 64u);
  EXPECT_EQ(sweep_chunk_size(1000000, 0), 64u);
}

TEST(SchedulerTest, RunsEveryIndexExactlyOnceAtEveryThreadCount) {
  const std::size_t n = 1337;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    scoped_thread_count guard(threads);
    std::vector<std::atomic<int>> counts(n);
    for (auto& c : counts) c.store(0);
    const sweep_stats stats = sweep_for(n, [&](std::size_t i) {
      counts[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(counts[i].load(), 1) << "threads=" << threads << " i=" << i;
    EXPECT_EQ(stats.tasks, n);
  }
}

TEST(SchedulerTest, StatsDescribeTheSubmittedWork) {
  scoped_thread_count guard(4);
  const std::size_t n = 500;
  const sweep_stats stats = sweep_for(n, [](std::size_t) {});
  EXPECT_EQ(stats.tasks, n);
  EXPECT_EQ(stats.chunk, sweep_chunk_size(n, 0));
  EXPECT_EQ(stats.chunks, (n + stats.chunk - 1) / stats.chunk);
  EXPECT_GE(stats.wall_seconds, 0.0);
  // One busy-time entry per participating lane; lane count never exceeds
  // the requested threads or the chunk count.
  EXPECT_EQ(stats.busy_seconds.size(), stats.threads);
  EXPECT_LE(stats.threads, 4u);
  EXPECT_LE(stats.threads, stats.chunks);
}

TEST(SchedulerTest, ExplicitChunkSizeIsHonored) {
  scoped_thread_count guard(2);
  const sweep_stats stats = sweep_for(100, [](std::size_t) {}, /*chunk=*/10);
  EXPECT_EQ(stats.chunk, 10u);
  EXPECT_EQ(stats.chunks, 10u);
}

TEST(SchedulerTest, ZeroTasksIsANoOp) {
  scoped_thread_count guard(4);
  bool ran = false;
  const sweep_stats stats = sweep_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
  EXPECT_EQ(stats.tasks, 0u);
  EXPECT_EQ(stats.chunks, 0u);
}

TEST(SchedulerTest, PropagatesFirstBodyException) {
  scoped_thread_count guard(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      sweep_for(200,
                [&](std::size_t i) {
                  if (i == 17) throw std::runtime_error("task failed");
                  completed.fetch_add(1, std::memory_order_relaxed);
                }),
      std::runtime_error);
  // The throw abandons unclaimed work instead of running it.
  EXPECT_LT(completed.load(), 200);
}

TEST(SchedulerTest, NestedSweepsRunSeriallyWithoutDeadlock) {
  scoped_thread_count guard(4);
  const std::size_t outer = 6, inner = 20;
  std::vector<int> counts(outer * inner, 0);
  sweep_for(outer, [&](std::size_t i) {
    EXPECT_TRUE(in_parallel_region());
    const sweep_stats inner_stats = sweep_for(inner, [&](std::size_t j) {
      // Serial on this worker, so the unsynchronized write is race-free.
      ++counts[i * inner + j];
    });
    EXPECT_EQ(inner_stats.threads, 1u);
  });
  for (std::size_t k = 0; k < counts.size(); ++k)
    ASSERT_EQ(counts[k], 1) << "k=" << k;
  EXPECT_FALSE(in_parallel_region());
}

TEST(SchedulerTest, DeterministicCountersAreThreadCountInvariant) {
  // The sim.scheduler.* counters must depend only on the submitted work,
  // never on how many lanes executed it: deterministic exports diff these
  // across BACKFI_THREADS settings.
  const std::size_t n = 777;
  std::string exports[2];
  std::size_t idx = 0;
  for (const std::size_t threads : {1u, 8u}) {
    scoped_thread_count guard(threads);
    obs::collector collector;
    const sweep_stats stats = sweep_for(n, [](std::size_t) {});
    report_sweep_stats(&collector, stats);
    exports[idx++] = obs::to_json(collector.registry(),
                                  {.include_timings = false, .pretty = true});
  }
  EXPECT_EQ(exports[0], exports[1]);
}

TEST(SchedulerTest, ReportSplitsCountersFromRuntimeGauges) {
  scoped_thread_count guard(2);
  obs::collector collector;
  const sweep_stats stats = sweep_for(50, [](std::size_t) {});
  report_sweep_stats(&collector, stats);
  const auto& reg = collector.registry();
  EXPECT_EQ(reg.counters().at("sim.scheduler.sweeps").value, 1u);
  EXPECT_EQ(reg.counters().at("sim.scheduler.tasks").value, 50u);
  EXPECT_TRUE(reg.gauges().at("runtime.scheduler.threads").set);
  EXPECT_TRUE(reg.gauges().at("runtime.scheduler.wall_seconds").set);
  // The gauges-only variant must add no deterministic counters.
  obs::collector gauges_only;
  report_sweep_runtime(&gauges_only, stats);
  EXPECT_EQ(gauges_only.registry().counters().count("sim.scheduler.sweeps"),
            0u);
  EXPECT_TRUE(
      gauges_only.registry().gauges().at("runtime.scheduler.threads").set);
  // Null collector is a no-op, not a crash.
  report_sweep_stats(nullptr, stats);
  report_sweep_runtime(nullptr, stats);
}

TEST(SchedulerTest, RangesCoverEveryIndexExactlyOnceAtEveryThreadCount) {
  const std::size_t n = 1337;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    scoped_thread_count guard(threads);
    std::vector<std::atomic<int>> counts(n);
    for (auto& c : counts) c.store(0);
    const sweep_stats stats =
        sweep_for_ranges(n, [&](std::size_t begin, std::size_t end) {
          ASSERT_LT(begin, end);
          ASSERT_LE(end, n);
          for (std::size_t i = begin; i < end; ++i)
            counts[i].fetch_add(1, std::memory_order_relaxed);
        });
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(counts[i].load(), 1) << "threads=" << threads << " i=" << i;
    EXPECT_EQ(stats.tasks, n);
    // Same chunk layout as the per-index API: a delivered range never
    // exceeds one chunk.
    EXPECT_EQ(stats.chunk, sweep_chunk_size(n, 0));
  }
}

TEST(SchedulerTest, RangeBodiesNeverReceiveMoreThanOneChunk) {
  scoped_thread_count guard(4);
  const std::size_t n = 1000, chunk = 16;
  sweep_for_ranges(
      n,
      [&](std::size_t begin, std::size_t end) {
        EXPECT_LE(end - begin, chunk);
      },
      chunk);
  // Serial fallback (threads=1) delivers the whole pool as one range.
  scoped_thread_count serial(1);
  std::size_t calls = 0, covered = 0;
  sweep_for_ranges(n, [&](std::size_t begin, std::size_t end) {
    ++calls;
    covered += end - begin;
    EXPECT_EQ(begin, 0u);
  });
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(covered, n);
}

TEST(SchedulerTest, RangeResultsIdenticalAcrossThreadCounts) {
  // The trial batchers ride on this: a range body whose per-index value is
  // a function of the index alone fills identical slot vectors at any
  // thread count, no matter how the chunks were distributed.
  const std::size_t n = 513;
  std::vector<std::uint64_t> reference(n);
  for (std::size_t i = 0; i < n; ++i)
    reference[i] = derive_trial_seed(42, i) * 0x2545F4914F6CDD1DULL;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    scoped_thread_count guard(threads);
    std::vector<std::uint64_t> out(n, 0);
    sweep_for_ranges(n, [&](std::size_t begin, std::size_t end) {
      // Per-chunk state (mirrors trial_batch): accumulation order inside a
      // chunk is fixed, and slots depend only on their own index.
      for (std::size_t i = begin; i < end; ++i)
        out[i] = derive_trial_seed(42, i) * 0x2545F4914F6CDD1DULL;
    });
    EXPECT_EQ(out, reference) << "threads=" << threads;
  }
}

TEST(SchedulerTest, ResultsIdenticalAcrossThreadCountsForSeededBodies) {
  // The determinism contract end to end: a body that derives its value
  // from (seed, index) alone produces the same slot vector at any thread
  // count.
  const std::size_t n = 400;
  std::vector<std::uint64_t> reference(n);
  for (std::size_t i = 0; i < n; ++i)
    reference[i] = derive_trial_seed(99, i) ^ (i * 0x9e3779b97f4a7c15ULL);
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    scoped_thread_count guard(threads);
    std::vector<std::uint64_t> out(n, 0);
    sweep_for(n, [&](std::size_t i) {
      out[i] = derive_trial_seed(99, i) ^ (i * 0x9e3779b97f4a7c15ULL);
    });
    EXPECT_EQ(out, reference) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace backfi::sim
