// Bit-identity guard for the zero-alloc trial hot path: pinned pre-change
// trial_result literals for fixed seeds, thread-count independence, and the
// workspace reuse gauges. Every double below was captured from the
// allocating implementation before the workspace/windowed-estimation
// restructure; EXPECT_EQ (not NEAR) is the point.
#include "sim/backscatter_sim.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "obs/export.h"
#include "sim/parallel.h"

namespace backfi::sim {
namespace {

scenario_config fig08_mid(std::uint64_t seed) {
  // The fig08 single-link mid-range scenario (bench/perf_trial measures the
  // same one).
  scenario_config cfg;
  cfg.seed = seed;
  cfg.excitation.ppdu_bytes = 4000;
  cfg.payload_bits = 600;
  cfg.tag.preamble_us = 32;
  cfg.tag_distance_m = 2.0;
  cfg.tag.rate = {tag::tag_modulation::psk16, phy::code_rate::half, 2.5e6};
  return cfg;
}

scenario_config default_at_range(std::uint64_t seed) {
  scenario_config cfg;
  cfg.seed = seed;
  cfg.tag_distance_m = 4.5;
  cfg.payload_bits = 400;
  return cfg;
}

struct pinned_link {
  std::uint64_t seed;
  std::size_t raw_symbol_errors;
  double post_mrc, expected, resid, adep, tdep, sync_corr, evm;
};

void expect_clean_decode(const trial_result& r, const pinned_link& p) {
  EXPECT_TRUE(r.woke) << "seed " << p.seed;
  EXPECT_TRUE(r.sync_found) << "seed " << p.seed;
  EXPECT_TRUE(r.decoded) << "seed " << p.seed;
  EXPECT_TRUE(r.crc_ok) << "seed " << p.seed;
  EXPECT_EQ(r.failure, reader::decode_failure::none) << "seed " << p.seed;
  EXPECT_FALSE(r.cancellation_bypassed) << "seed " << p.seed;
  EXPECT_EQ(r.bit_errors, 0u) << "seed " << p.seed;
  EXPECT_EQ(r.raw_symbol_errors, p.raw_symbol_errors) << "seed " << p.seed;
  EXPECT_EQ(r.link.post_mrc_snr_db, p.post_mrc) << "seed " << p.seed;
  EXPECT_EQ(r.link.expected_snr_db, p.expected) << "seed " << p.seed;
  EXPECT_EQ(r.link.residual_si_over_noise_db, p.resid) << "seed " << p.seed;
  EXPECT_EQ(r.link.analog_depth_db, p.adep) << "seed " << p.seed;
  EXPECT_EQ(r.link.total_depth_db, p.tdep) << "seed " << p.seed;
  EXPECT_EQ(r.link.sync_correlation, p.sync_corr) << "seed " << p.seed;
  EXPECT_EQ(r.link.evm_rms, p.evm) << "seed " << p.seed;
}

TEST(TrialWorkspaceTest, PinnedFig08MidTrialLiterals) {
  const pinned_link pins[] = {
      {1, 18, 21.071311474992132, 20.249775125496146, 1.0095487875450153,
       38.101940753924055, 93.657531583178582, 0.99611578938472778,
       0.13959279789580115},
      {2, 8, 20.287453834123355, 22.614753874231202, 1.5509648657818129,
       35.245453458967411, 93.344524506649563, 0.99535282504227462,
       0.11590022933265229},
      {3, 25, 17.136920025798169, 19.506378145520838, 0.9441169823906953,
       37.475019432824354, 94.132720808162674, 0.9904712520873763,
       0.15076393248718464},
      {7, 5, 22.142199558974426, 23.265495190160166, 1.5023054899817103,
       37.085644212667773, 93.642668255898954, 0.99696074852992023,
       0.1071522626670624},
  };
  for (const pinned_link& p : pins) {
    const trial_result r = run_backscatter_trial(fig08_mid(p.seed));
    expect_clean_decode(r, p);
    EXPECT_EQ(r.payload_symbols, 319u) << "seed " << p.seed;
    EXPECT_EQ(r.tag_energy_pj, 4891.1766119999993) << "seed " << p.seed;
    EXPECT_EQ(r.effective_throughput_bps, 3296703.2967032972)
        << "seed " << p.seed;
  }
}

TEST(TrialWorkspaceTest, PinnedDefaultScenarioLiterals) {
  {
    const trial_result r = run_backscatter_trial(default_at_range(42));
    const pinned_link p{42, 93, 3.9104325786743841, 5.7709038707118046,
                        1.740848297567966, 36.684523960459032,
                        93.206585973006753, 0.84322821808562354,
                        0.62168380913339494};
    expect_clean_decode(r, p);
    EXPECT_EQ(r.payload_symbols, 438u);
    EXPECT_EQ(r.tag_energy_pj, 1777.8171599999998);
    EXPECT_EQ(r.effective_throughput_bps, 796812.74900398415);
  }
  {
    // Seed 43 fails its CRC at this range; failure literals are pinned too.
    const trial_result r = run_backscatter_trial(default_at_range(43));
    EXPECT_TRUE(r.woke);
    EXPECT_TRUE(r.sync_found);
    EXPECT_TRUE(r.decoded);
    EXPECT_FALSE(r.crc_ok);
    EXPECT_EQ(r.failure, reader::decode_failure::crc_failed);
    EXPECT_EQ(r.bit_errors, 25u);
    EXPECT_EQ(r.raw_symbol_errors, 87u);
    EXPECT_EQ(r.payload_symbols, 438u);
    EXPECT_EQ(r.link.post_mrc_snr_db, 4.2886973182057648);
    EXPECT_EQ(r.link.expected_snr_db, 4.3790799909669671);
    EXPECT_EQ(r.link.residual_si_over_noise_db, 0.82210410339547801);
    EXPECT_EQ(r.link.analog_depth_db, 38.89345281431553);
    EXPECT_EQ(r.link.total_depth_db, 94.033369223440388);
    EXPECT_EQ(r.link.sync_correlation, 0.85357813507461267);
    EXPECT_EQ(r.link.evm_rms, 0.6305160061262769);
    EXPECT_EQ(r.tag_energy_pj, 1777.8171599999998);
    EXPECT_EQ(r.effective_throughput_bps, 0.0);
  }
}

TEST(TrialWorkspaceTest, ExplicitWorkspaceMatchesThreadLocalPath) {
  const trial_result plain = run_backscatter_trial(fig08_mid(7));

  // A workspace warmed on a *different* scenario must produce identical
  // results: no decode state may leak across trials through the buffers.
  trial_workspace ws;
  run_backscatter_trial(default_at_range(42), ws);
  const trial_result reused = run_backscatter_trial(fig08_mid(7), ws);

  EXPECT_EQ(reused.crc_ok, plain.crc_ok);
  EXPECT_EQ(reused.bit_errors, plain.bit_errors);
  EXPECT_EQ(reused.raw_symbol_errors, plain.raw_symbol_errors);
  EXPECT_EQ(reused.link.post_mrc_snr_db, plain.link.post_mrc_snr_db);
  EXPECT_EQ(reused.link.expected_snr_db, plain.link.expected_snr_db);
  EXPECT_EQ(reused.link.sync_correlation, plain.link.sync_correlation);
  EXPECT_EQ(reused.link.evm_rms, plain.link.evm_rms);
  EXPECT_EQ(reused.link.analog_depth_db, plain.link.analog_depth_db);
  EXPECT_EQ(reused.link.total_depth_db, plain.link.total_depth_db);
  EXPECT_EQ(reused.tag_energy_pj, plain.tag_energy_pj);
  EXPECT_EQ(reused.effective_throughput_bps, plain.effective_throughput_bps);
}

TEST(TrialWorkspaceTest, PacketErrorRateIndependentOfThreadCount) {
  const scenario_config cfg = default_at_range(100);
  double per[3] = {0.0, 0.0, 0.0};
  {
    scoped_thread_count one(1);
    per[0] = packet_error_rate(cfg, 12);
  }
  {
    scoped_thread_count two(2);
    per[1] = packet_error_rate(cfg, 12);
  }
  {
    scoped_thread_count four(4);
    per[2] = packet_error_rate(cfg, 12);
  }
  EXPECT_EQ(per[0], per[1]);
  EXPECT_EQ(per[0], per[2]);
}

TEST(TrialWorkspaceTest, CollectorDoesNotPerturbTrialResults) {
  const trial_result plain = run_backscatter_trial(fig08_mid(2));
  obs::collector root;
  scenario_config cfg = fig08_mid(2);
  cfg.collector = &root;
  const trial_result observed = run_backscatter_trial(cfg);
  EXPECT_EQ(observed.crc_ok, plain.crc_ok);
  EXPECT_EQ(observed.raw_symbol_errors, plain.raw_symbol_errors);
  EXPECT_EQ(observed.link.post_mrc_snr_db, plain.link.post_mrc_snr_db);
  EXPECT_EQ(observed.link.sync_correlation, plain.link.sync_correlation);
  EXPECT_EQ(observed.link.evm_rms, plain.link.evm_rms);
  EXPECT_EQ(observed.tag_energy_pj, plain.tag_energy_pj);
}

TEST(TrialWorkspaceTest, PinnedTelemetryExportDigest) {
  // The merged no-timings export of three fig08 trials, byte for byte: the
  // restructure must not move, rename or renumber any exported metric.
  obs::collector root;
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    scenario_config cfg = fig08_mid(seed);
    cfg.collector = &root;
    run_backscatter_trial(cfg);
  }
  const std::string json = obs::to_json(
      root.registry(), {.include_timings = false, .pretty = true});
  EXPECT_EQ(json.size(), 3647u);
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : json) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  EXPECT_EQ(h, 0x530a358a920bb4adULL);
}

TEST(TrialWorkspaceTest, ReuseGaugeClimbsOnWarmWorkspace) {
  obs::collector root;
  trial_workspace ws;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    scenario_config cfg = fig08_mid(seed);
    cfg.collector = &root;
    run_backscatter_trial(cfg, ws);
  }
  const auto& gauges = root.registry().gauges();
  const auto it = gauges.find("runtime.workspace.reuse_pct");
  ASSERT_NE(it, gauges.end());
  ASSERT_TRUE(it->second.set);
  // All capture-length buffers are allocated in the first trial or two;
  // from then on every acquisition is a reuse, so the cumulative fraction
  // approaches 100% from below.
  EXPECT_GE(it->second.value, 90.0);
  EXPECT_LE(it->second.value, 100.0);
  const auto alloc = gauges.find("runtime.workspace.bytes_allocated");
  const auto reused = gauges.find("runtime.workspace.bytes_reused");
  ASSERT_NE(alloc, gauges.end());
  ASSERT_NE(reused, gauges.end());
  EXPECT_GT(reused->second.value, alloc->second.value);
}

}  // namespace
}  // namespace backfi::sim
