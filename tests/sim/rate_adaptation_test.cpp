#include "sim/rate_adaptation.h"

#include <gtest/gtest.h>

namespace backfi::sim {
namespace {

scenario_config fast_base() {
  scenario_config cfg;
  cfg.excitation.ppdu_bytes = 2000;
  cfg.payload_bits = 300;
  cfg.seed = 1;
  return cfg;
}

TEST(RateAdaptationTest, ThirtySixOperatingPointsSortedByThroughput) {
  const auto points = all_operating_points();
  ASSERT_EQ(points.size(), 36u);
  for (std::size_t i = 1; i < points.size(); ++i)
    EXPECT_GE(points[i].throughput_bps, points[i - 1].throughput_bps);
  // Extremes match Fig. 7: 5 Kbps .. 6.67 Mbps.
  EXPECT_NEAR(points.front().throughput_bps, 5e3, 1.0);
  EXPECT_NEAR(points.back().throughput_bps, 6.67e6, 1e4);
}

TEST(RateAdaptationTest, RepbValuesComeFromEnergyModel) {
  for (const auto& p : all_operating_points())
    EXPECT_DOUBLE_EQ(p.repb, tag::relative_energy_per_bit(p.rate));
}

TEST(RateAdaptationTest, ScenarioForPointScalesSyncAndBurst) {
  const auto base = fast_base();
  const auto slow = scenario_for_point(
      base, {tag::tag_modulation::bpsk, phy::code_rate::half, 1e4}, 3.0);
  const auto fast = scenario_for_point(
      base, {tag::tag_modulation::psk16, phy::code_rate::two_thirds, 2.5e6}, 3.0);
  EXPECT_LT(slow.tag.sync_symbols, fast.tag.sync_symbols);
  EXPECT_GT(slow.excitation.n_ppdus, fast.excitation.n_ppdus);
  EXPECT_LT(slow.payload_bits, fast.payload_bits);
  EXPECT_DOUBLE_EQ(slow.tag_distance_m, 3.0);
}

TEST(RateAdaptationTest, ScenarioFitsWithinBurst) {
  const auto base = fast_base();
  for (const auto& point : all_operating_points()) {
    const auto cfg = scenario_for_point(base, point.rate, 2.0);
    const tag::tag_device device(cfg.tag);
    const std::size_t sps = device.samples_per_symbol();
    const std::size_t need =
        320 + cfg.tag.silent_us * 20 + cfg.tag.preamble_us * 20 +
        cfg.tag.sync_symbols * sps +
        device.payload_symbols(cfg.payload_bits) * sps;
    EXPECT_LE(need, reader::excitation_length(cfg.excitation) + 0u)
        << tag::modulation_name(point.rate.modulation) << " @ "
        << point.rate.symbol_rate_hz;
  }
}

TEST(RateAdaptationTest, MaxGoodputPicksBestUsable) {
  std::vector<link_evaluation> evals;
  link_evaluation a;
  a.point.throughput_bps = 1e6;
  a.packet_error_rate = 0.0;
  a.goodput_bps = 1e6;
  a.usable = true;
  link_evaluation b;
  b.point.throughput_bps = 4e6;
  b.packet_error_rate = 0.5;
  b.goodput_bps = 2e6;
  b.usable = true;
  link_evaluation c;
  c.point.throughput_bps = 6e6;
  c.packet_error_rate = 1.0;
  c.goodput_bps = 0.0;
  c.usable = false;
  evals = {a, b, c};
  const auto best = max_goodput_point(evals);
  ASSERT_TRUE(best.has_value());
  EXPECT_DOUBLE_EQ(best->goodput_bps, 2e6);
}

TEST(RateAdaptationTest, MinRepbRespectsThroughputTarget) {
  std::vector<link_evaluation> evals;
  link_evaluation cheap;
  cheap.point.throughput_bps = 0.5e6;
  cheap.point.repb = 0.7;
  cheap.usable = true;
  link_evaluation fast;
  fast.point.throughput_bps = 2e6;
  fast.point.repb = 1.2;
  fast.usable = true;
  link_evaluation fastest;
  fastest.point.throughput_bps = 5e6;
  fastest.point.repb = 2.5;
  fastest.usable = true;
  evals = {cheap, fast, fastest};

  const auto for_1m = min_repb_point_for_throughput(evals, 1e6);
  ASSERT_TRUE(for_1m.has_value());
  EXPECT_DOUBLE_EQ(for_1m->repb, 1.2);

  const auto for_3m = min_repb_point_for_throughput(evals, 3e6);
  ASSERT_TRUE(for_3m.has_value());
  EXPECT_DOUBLE_EQ(for_3m->repb, 2.5);

  EXPECT_FALSE(min_repb_point_for_throughput(evals, 10e6).has_value());
}

TEST(RateAdaptationTest, FindMaxGoodputAtCloseRangeIsMultiMbps) {
  // Integration: at 1 m the link sustains multiple Mbps (paper: 5 Mbps).
  auto base = fast_base();
  base.seed = 77;
  const auto best = find_max_goodput(base, 1.0, 2);
  ASSERT_TRUE(best.has_value());
  EXPECT_GE(best->goodput_bps, 2e6);
}

TEST(RateAdaptationTest, NothingDecodesAbsurdlyFar) {
  auto base = fast_base();
  base.seed = 88;
  const auto best = find_max_goodput(base, 80.0, 1);
  EXPECT_FALSE(best.has_value());
}

}  // namespace
}  // namespace backfi::sim
