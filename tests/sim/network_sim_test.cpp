#include "sim/network_sim.h"

#include <gtest/gtest.h>

namespace backfi::sim {
namespace {

network_config small_network() {
  network_config cfg;
  cfg.link.excitation.ppdu_bytes = 2000;
  cfg.link.seed = 5;
  cfg.opportunities = 12;
  cfg.payload_bits = 300;
  cfg.tags = {
      {.id = 1, .distance_m = 1.0, .arrival_bits_per_opportunity = 300.0},
      {.id = 2, .distance_m = 2.0, .arrival_bits_per_opportunity = 300.0},
      {.id = 3, .distance_m = 3.0, .arrival_bits_per_opportunity = 300.0},
  };
  return cfg;
}

TEST(NetworkSimTest, RejectsEmptyNetwork) {
  network_config cfg;
  EXPECT_THROW(run_tag_network(cfg), std::invalid_argument);
}

TEST(NetworkSimTest, AllTagsGetServedRoundRobin) {
  const auto result = run_tag_network(small_network());
  ASSERT_EQ(result.per_tag.size(), 3u);
  for (const auto& t : result.per_tag) {
    EXPECT_GE(t.attempts, 3u) << t.id;
    EXPECT_GT(t.successes, 0u) << t.id;
    EXPECT_GT(t.delivered_bits, 0.0) << t.id;
  }
  EXPECT_GT(result.total_delivered_bits, 0.0);
  EXPECT_EQ(result.idle_opportunities, 0u);
}

TEST(NetworkSimTest, FairnessNearOneForSymmetricTags) {
  network_config cfg = small_network();
  for (auto& t : cfg.tags) t.distance_m = 1.5;  // identical placements
  cfg.opportunities = 15;
  const auto result = run_tag_network(cfg);
  EXPECT_GT(result.jain_fairness, 0.95);
}

TEST(NetworkSimTest, DistantUnreachableTagFallsBack) {
  network_config cfg = small_network();
  cfg.tags[2].distance_m = 30.0;  // beyond any usable range
  cfg.tags[2].rate = {tag::tag_modulation::psk16, phy::code_rate::two_thirds,
                      2.5e6};
  cfg.opportunities = 16;
  const auto result = run_tag_network(cfg);
  const auto& far_tag = result.per_tag[2];
  EXPECT_EQ(far_tag.successes, 0u);
  // The scheduler's fallback should have walked its operating point down.
  EXPECT_LT(tag::throughput_bps(far_tag.final_rate),
            tag::throughput_bps(cfg.tags[2].rate));
  // And the reachable tags still delivered.
  EXPECT_GT(result.per_tag[0].delivered_bits, 0.0);
  EXPECT_GT(result.per_tag[1].delivered_bits, 0.0);
}

TEST(NetworkSimTest, DeterministicPerSeed) {
  const auto a = run_tag_network(small_network());
  const auto b = run_tag_network(small_network());
  EXPECT_DOUBLE_EQ(a.total_delivered_bits, b.total_delivered_bits);
  EXPECT_DOUBLE_EQ(a.jain_fairness, b.jain_fairness);
}

}  // namespace
}  // namespace backfi::sim
