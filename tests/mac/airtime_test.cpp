#include "mac/airtime.h"

#include <gtest/gtest.h>

namespace backfi::mac {
namespace {

TEST(AirtimeTest, PpduAirtimeExamples) {
  // 1500 bytes at 54 Mbps: (16+12000+6)/216 = 56 symbols -> 20 + 224 us.
  EXPECT_NEAR(ppdu_airtime_us(1500, wifi::wifi_rate::mbps54), 244.0, 1e-9);
  // 1500 bytes at 6 Mbps: (12022)/24 = 501 symbols -> 20 + 2004 us.
  EXPECT_NEAR(ppdu_airtime_us(1500, wifi::wifi_rate::mbps6), 2024.0, 1e-9);
}

TEST(AirtimeTest, AirtimeMonotonicInBytesAndRate) {
  EXPECT_GT(ppdu_airtime_us(1500, wifi::wifi_rate::mbps24),
            ppdu_airtime_us(100, wifi::wifi_rate::mbps24));
  EXPECT_GT(ppdu_airtime_us(1000, wifi::wifi_rate::mbps6),
            ppdu_airtime_us(1000, wifi::wifi_rate::mbps54));
}

TEST(AirtimeTest, CtsToSelfIsShort) {
  const double cts = cts_to_self_airtime_us();
  EXPECT_GT(cts, 20.0);
  EXPECT_LT(cts, 40.0);
}

TEST(AirtimeTest, BackfiOverheadComposition) {
  EXPECT_NEAR(backfi_overhead_us(32.0),
              cts_to_self_airtime_us() + 16.0 + 16.0 + 32.0, 1e-9);
  EXPECT_NEAR(backfi_overhead_us(96.0) - backfi_overhead_us(32.0), 64.0, 1e-9);
}

}  // namespace
}  // namespace backfi::mac
