#include "mac/tag_network.h"

#include <gtest/gtest.h>

namespace backfi::mac {
namespace {

tag_descriptor make_tag(std::uint32_t id, double backlog = 1000.0,
                        double weight = 1.0) {
  return {.id = id,
          .rate = {tag::tag_modulation::qpsk, phy::code_rate::half, 1e6},
          .backlog_bits = backlog,
          .weight = weight};
}

TEST(TagSchedulerTest, RejectsDuplicateIds) {
  tag_scheduler s;
  s.add_tag(make_tag(1));
  EXPECT_THROW(s.add_tag(make_tag(1)), std::invalid_argument);
}

TEST(TagSchedulerTest, EmptyOrIdleReturnsNothing) {
  tag_scheduler s;
  EXPECT_FALSE(s.next().has_value());
  s.add_tag(make_tag(1, 0.0));
  EXPECT_FALSE(s.next().has_value());
  s.enqueue(1, 100.0);
  EXPECT_TRUE(s.next().has_value());
}

TEST(TagSchedulerTest, RoundRobinCyclesBackloggedTags) {
  tag_scheduler s(tag_scheduler::policy::round_robin);
  for (std::uint32_t id : {1u, 2u, 3u}) s.add_tag(make_tag(id));
  std::vector<std::uint32_t> order;
  for (int i = 0; i < 6; ++i) order.push_back(*s.next());
  EXPECT_EQ(order, (std::vector<std::uint32_t>{1, 2, 3, 1, 2, 3}));
}

TEST(TagSchedulerTest, RoundRobinSkipsEmptyQueues) {
  tag_scheduler s(tag_scheduler::policy::round_robin);
  s.add_tag(make_tag(1, 0.0));
  s.add_tag(make_tag(2, 500.0));
  s.add_tag(make_tag(3, 0.0));
  EXPECT_EQ(*s.next(), 2u);
  EXPECT_EQ(*s.next(), 2u);
}

TEST(TagSchedulerTest, MaxBacklogPicksLargestQueue) {
  tag_scheduler s(tag_scheduler::policy::max_backlog);
  s.add_tag(make_tag(1, 100.0));
  s.add_tag(make_tag(2, 900.0));
  s.add_tag(make_tag(3, 400.0));
  EXPECT_EQ(*s.next(), 2u);
  s.report_result(2, true, 850.0);  // drains to 50
  EXPECT_EQ(*s.next(), 3u);
}

TEST(TagSchedulerTest, WeightedSharesFollowWeights) {
  tag_scheduler s(tag_scheduler::policy::weighted);
  s.add_tag(make_tag(1, 1e9, 3.0));
  s.add_tag(make_tag(2, 1e9, 1.0));
  int wins1 = 0, wins2 = 0;
  for (int i = 0; i < 400; ++i) {
    const auto id = *s.next();
    (id == 1 ? wins1 : wins2)++;
    s.report_result(id, true, 100.0);
  }
  EXPECT_NEAR(static_cast<double>(wins1) / wins2, 3.0, 0.4);
}

TEST(TagSchedulerTest, SuccessDrainsBacklog) {
  tag_scheduler s;
  s.add_tag(make_tag(1, 300.0));
  s.report_result(1, true, 300.0);
  EXPECT_FALSE(s.next().has_value());
  EXPECT_DOUBLE_EQ(s.stats(1).delivered_bits, 300.0);
  EXPECT_EQ(s.stats(1).successes, 1u);
}

TEST(TagSchedulerTest, RepeatedFailuresTriggerRateFallback) {
  tag_scheduler s;
  s.add_tag(make_tag(1));
  const double initial_rate = s.descriptor(1).rate.symbol_rate_hz;
  s.report_result(1, false, 0.0);
  EXPECT_DOUBLE_EQ(s.descriptor(1).rate.symbol_rate_hz, initial_rate);
  s.report_result(1, false, 0.0);  // second consecutive failure
  EXPECT_LT(s.descriptor(1).rate.symbol_rate_hz, initial_rate);
}

TEST(TagSchedulerTest, JainFairnessBounds) {
  tag_scheduler s;
  s.add_tag(make_tag(1));
  s.add_tag(make_tag(2));
  s.report_result(1, true, 500.0);
  s.report_result(2, true, 500.0);
  EXPECT_NEAR(s.jain_fairness(), 1.0, 1e-12);
  s.report_result(1, true, 5000.0);
  EXPECT_LT(s.jain_fairness(), 0.8);
  EXPECT_GE(s.jain_fairness(), 0.5);  // lower bound 1/n with n=2
}

TEST(FallbackRateTest, WalksDownToMostRobustPoint) {
  tag::tag_rate_config rate{tag::tag_modulation::psk16,
                            phy::code_rate::two_thirds, 2.5e6};
  int steps = 0;
  while (fallback_rate(rate) && steps < 100) ++steps;
  EXPECT_EQ(rate.modulation, tag::tag_modulation::bpsk);
  EXPECT_EQ(rate.coding, phy::code_rate::half);
  EXPECT_DOUBLE_EQ(rate.symbol_rate_hz, 1e4);
  EXPECT_GT(steps, 5);
  EXPECT_FALSE(fallback_rate(rate));
}

TEST(FallbackRateTest, FirstStepSlowsSymbolClock) {
  tag::tag_rate_config rate{tag::tag_modulation::qpsk, phy::code_rate::half,
                            1e6};
  ASSERT_TRUE(fallback_rate(rate));
  EXPECT_EQ(rate.modulation, tag::tag_modulation::qpsk);
  EXPECT_DOUBLE_EQ(rate.symbol_rate_hz, 5e5);
}

}  // namespace
}  // namespace backfi::mac
