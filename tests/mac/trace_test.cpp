#include "mac/trace.h"

#include <gtest/gtest.h>

namespace backfi::mac {
namespace {

TEST(TraceTest, BusyFractionHitsTarget) {
  for (double target : {0.6, 0.8, 0.9}) {
    const ap_trace trace = generate_loaded_ap_trace(
        {.duration_s = 5.0, .target_busy_fraction = target, .seed = 1});
    EXPECT_NEAR(trace.busy_fraction(), target, 0.06) << target;
  }
}

TEST(TraceTest, TransmissionsAreOrderedAndDisjoint) {
  const ap_trace trace = generate_loaded_ap_trace({.seed = 2});
  ASSERT_GT(trace.transmissions.size(), 10u);
  for (std::size_t i = 1; i < trace.transmissions.size(); ++i) {
    const auto& prev = trace.transmissions[i - 1];
    const auto& cur = trace.transmissions[i];
    EXPECT_GE(cur.start_us, prev.start_us + prev.airtime_us);
  }
  EXPECT_LE(trace.transmissions.back().start_us +
                trace.transmissions.back().airtime_us,
            trace.duration_us + 1e-9);
}

TEST(TraceTest, GapsIncludeDifs) {
  const ap_trace trace = generate_loaded_ap_trace({.seed = 3});
  for (std::size_t i = 1; i < trace.transmissions.size(); ++i) {
    const double gap = trace.transmissions[i].start_us -
                       (trace.transmissions[i - 1].start_us +
                        trace.transmissions[i - 1].airtime_us);
    EXPECT_GE(gap, difs_us - 1e-9);
  }
}

TEST(TraceTest, DeterministicPerSeed) {
  const ap_trace a = generate_loaded_ap_trace({.seed = 4});
  const ap_trace b = generate_loaded_ap_trace({.seed = 4});
  ASSERT_EQ(a.transmissions.size(), b.transmissions.size());
  for (std::size_t i = 0; i < a.transmissions.size(); ++i)
    EXPECT_DOUBLE_EQ(a.transmissions[i].start_us, b.transmissions[i].start_us);
}

TEST(TraceTest, ReplayThroughputBelowOptimalAndAboveHalf) {
  // Paper Fig. 12a: a loaded network still yields ~80% of the optimal
  // backscatter throughput.
  const ap_trace trace = generate_loaded_ap_trace(
      {.duration_s = 5.0, .target_busy_fraction = 0.85, .seed = 5});
  const double tput = replay_backscatter_throughput_bps(
      trace, {.optimal_throughput_bps = 5e6});
  EXPECT_LT(tput, 5e6);
  EXPECT_GT(tput, 2.5e6);
}

TEST(TraceTest, ReplayScalesWithBusyFraction) {
  const replay_config rc{.optimal_throughput_bps = 5e6};
  const double low = replay_backscatter_throughput_bps(
      generate_loaded_ap_trace({.target_busy_fraction = 0.5, .seed = 6}), rc);
  const double high = replay_backscatter_throughput_bps(
      generate_loaded_ap_trace({.target_busy_fraction = 0.9, .seed = 6}), rc);
  EXPECT_GT(high, 1.4 * low);
}

TEST(TraceTest, OverheadReducesThroughput) {
  const ap_trace trace = generate_loaded_ap_trace({.seed = 7});
  const double small_oh = replay_backscatter_throughput_bps(
      trace, {.optimal_throughput_bps = 5e6, .overhead_us = 10.0});
  const double large_oh = replay_backscatter_throughput_bps(
      trace, {.optimal_throughput_bps = 5e6, .overhead_us = 200.0});
  EXPECT_GT(small_oh, large_oh);
}

TEST(TraceTest, EmptyTraceGivesZero) {
  const ap_trace empty;
  EXPECT_DOUBLE_EQ(replay_backscatter_throughput_bps(
                       empty, {.optimal_throughput_bps = 5e6}),
                   0.0);
  EXPECT_DOUBLE_EQ(empty.busy_fraction(), 0.0);
}

TEST(BurstScheduleTest, DutyMatchesConfigOverLongWindows) {
  for (double duty : {0.3, 0.5, 0.8}) {
    const burst_schedule schedule = generate_burst_schedule(
        {.duty_cycle = duty, .mean_on_us = 4000.0, .seed = 21}, 5e6);
    EXPECT_NEAR(schedule.duty(), duty, 0.08) << duty;
  }
}

TEST(BurstScheduleTest, FullDutyIsOneSolidOnPeriod) {
  const burst_schedule schedule =
      generate_burst_schedule({.duty_cycle = 1.0, .seed = 22}, 1e5);
  ASSERT_EQ(schedule.on_periods.size(), 1u);
  EXPECT_DOUBLE_EQ(schedule.duty(), 1.0);
  EXPECT_TRUE(schedule.on_at(0.0));
  EXPECT_TRUE(schedule.on_at(99999.0));
}

TEST(BurstScheduleTest, DeterministicPerSeedAndStartsOn) {
  const burst_config config{.duty_cycle = 0.6, .mean_on_us = 2000.0, .seed = 23};
  const burst_schedule a = generate_burst_schedule(config, 1e6);
  const burst_schedule b = generate_burst_schedule(config, 1e6);
  ASSERT_EQ(a.on_periods.size(), b.on_periods.size());
  for (std::size_t i = 0; i < a.on_periods.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.on_periods[i].start_us, b.on_periods[i].start_us);
    EXPECT_DOUBLE_EQ(a.on_periods[i].airtime_us, b.on_periods[i].airtime_us);
  }
  EXPECT_DOUBLE_EQ(a.on_periods.front().start_us, 0.0);
  EXPECT_TRUE(a.on_at(0.0));
}

TEST(BurstScheduleTest, OnAtTracksPeriodBoundaries) {
  burst_schedule schedule;
  schedule.duration_us = 100.0;
  schedule.on_periods = {{0.0, 10.0}, {50.0, 20.0}};
  EXPECT_TRUE(schedule.on_at(0.0));
  EXPECT_TRUE(schedule.on_at(9.9));
  EXPECT_FALSE(schedule.on_at(10.0));
  EXPECT_FALSE(schedule.on_at(49.9));
  EXPECT_TRUE(schedule.on_at(50.0));
  EXPECT_FALSE(schedule.on_at(70.0));
  EXPECT_DOUBLE_EQ(schedule.duty(), 0.3);
}

TEST(BurstScheduleTest, GatingDropsOffPeriodTransmissionsOnly) {
  const ap_trace trace = generate_loaded_ap_trace({.seed = 24});
  burst_schedule schedule;
  schedule.duration_us = trace.duration_us;
  // ON only in the first half of the window.
  schedule.on_periods = {{0.0, trace.duration_us / 2.0}};
  const ap_trace gated = gate_trace(trace, schedule);
  ASSERT_GT(gated.transmissions.size(), 0u);
  EXPECT_LT(gated.transmissions.size(), trace.transmissions.size());
  for (const auto& tx : gated.transmissions)
    EXPECT_LT(tx.start_us, trace.duration_us / 2.0);
  EXPECT_LT(gated.busy_fraction(), trace.busy_fraction());
}

TEST(BurstScheduleTest, PollAvailabilitySamplesSchedule) {
  burst_schedule schedule;
  schedule.duration_us = 100.0;
  schedule.on_periods = {{0.0, 25.0}, {60.0, 30.0}};
  const auto available = poll_availability(schedule, 10, 10.0);
  const std::vector<std::uint8_t> expected = {1, 1, 1, 0, 0, 0, 1, 1, 1, 0};
  EXPECT_EQ(available, expected);
}

TEST(BurstScheduleTest, ZeroDurationIsEmpty) {
  const burst_schedule schedule =
      generate_burst_schedule({.duty_cycle = 0.5, .seed = 25}, 0.0);
  EXPECT_TRUE(schedule.on_periods.empty());
  EXPECT_DOUBLE_EQ(schedule.duty(), 0.0);
  EXPECT_FALSE(schedule.on_at(0.0));
}

}  // namespace
}  // namespace backfi::mac
