#include "mac/link_supervisor.h"

#include <gtest/gtest.h>

#include <limits>
#include <memory>

namespace backfi::mac {
namespace {

constexpr std::uint32_t kTag = 7;
const tag::tag_rate_config kStartRate = {tag::tag_modulation::qpsk,
                                         phy::code_rate::half, 1e6};

struct harness {
  tag_scheduler scheduler{tag_scheduler::policy::round_robin};
  arq_config config;
  std::unique_ptr<link_supervisor> supervisor;

  explicit harness(const arq_config& cfg = {}) : config(cfg) {
    scheduler.add_tag(
        {.id = kTag, .rate = kStartRate, .backlog_bits = 1e9, .weight = 1.0});
    supervisor = std::make_unique<link_supervisor>(scheduler, config);
  }

  /// One opportunity: poll if the supervisor grants one, report `ok`.
  /// Returns whether a poll was issued (false = backed-off idle slot).
  bool step(bool ok) {
    const auto id = supervisor->next();
    if (!id) return false;
    supervisor->report_result(*id, ok, ok ? 256.0 : 0.0);
    return true;
  }
};

TEST(LinkSupervisorTest, HealthyLinkPollsEveryOpportunity) {
  harness h;
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(h.step(true));
  EXPECT_EQ(h.supervisor->state(kTag), link_state::healthy);
  EXPECT_EQ(h.supervisor->stats(kTag).retries, 0u);
}

TEST(LinkSupervisorTest, FailureTriggersBoundedImmediateRetries) {
  harness h;
  EXPECT_TRUE(h.step(false));
  EXPECT_EQ(h.supervisor->state(kTag), link_state::retrying);
  // The retry succeeds: transaction recovered without touching the rate.
  EXPECT_TRUE(h.step(true));
  EXPECT_EQ(h.supervisor->state(kTag), link_state::healthy);
  EXPECT_EQ(h.supervisor->stats(kTag).retries, 1u);
  EXPECT_EQ(h.scheduler.descriptor(kTag).rate.symbol_rate_hz,
            kStartRate.symbol_rate_hz);
}

TEST(LinkSupervisorTest, PersistentFailureFallsBackAndBacksOff) {
  harness h;
  for (int i = 0; i < 20; ++i) h.step(false);
  EXPECT_GT(h.supervisor->stats(kTag).fallbacks, 0u);
  EXPECT_LT(h.scheduler.descriptor(kTag).rate.symbol_rate_hz,
            kStartRate.symbol_rate_hz);
  // Exponential backoff: some opportunities must have been idle slots.
  EXPECT_GT(h.supervisor->stats(kTag).deferred_polls, 0u);
}

TEST(LinkSupervisorTest, RetriesPerTransactionAreBounded) {
  arq_config cfg;
  cfg.max_retries = 2;
  harness h(cfg);
  // Fail forever: each transaction may retry at most max_retries times, so
  // retries never exceed polls * max_retries / (max_retries + 1).
  std::size_t polls = 0;
  for (int i = 0; i < 30; ++i) polls += h.step(false) ? 1 : 0;
  const auto& stats = h.supervisor->stats(kTag);
  EXPECT_LE(stats.retries, polls * cfg.max_retries / (cfg.max_retries + 1) + 1);
}

TEST(LinkSupervisorTest, HealthyStreakProbesUpAndRevertsOnFailure) {
  arq_config cfg;
  cfg.probe_up_after = 4;
  harness h(cfg);
  // Drive a fallback first so there is headroom to probe into.
  for (int i = 0; i < 12; ++i) h.step(false);
  const double fallen = h.scheduler.descriptor(kTag).rate.symbol_rate_hz;
  ASSERT_LT(fallen, kStartRate.symbol_rate_hz);
  // A healthy streak triggers a probe one step faster.
  int steps = 0;
  while (h.supervisor->stats(kTag).probe_ups == 0 && steps < 64) {
    h.step(true);
    ++steps;
  }
  EXPECT_GT(h.supervisor->stats(kTag).probe_ups, 0u);
  EXPECT_GT(h.scheduler.descriptor(kTag).rate.symbol_rate_hz, fallen);
  // First failure while probing reverts to the pre-probe point.
  if (h.supervisor->state(kTag) == link_state::probing) {
    h.step(false);
    EXPECT_EQ(h.scheduler.descriptor(kTag).rate.symbol_rate_hz, fallen);
  }
}

TEST(LinkSupervisorTest, DeadLinkSuspendsWithKeepalive) {
  arq_config cfg;
  cfg.suspend_after = 2;
  cfg.suspend_poll_interval = 8;
  harness h(cfg);
  int issued = 0;
  for (int i = 0; i < 400; ++i) issued += h.step(false) ? 1 : 0;
  EXPECT_EQ(h.supervisor->state(kTag), link_state::suspended);
  EXPECT_GT(h.supervisor->stats(kTag).suspensions, 0u);
  // Keepalive only: far fewer polls than opportunities.
  EXPECT_LT(issued, 200);

  // A keepalive success revives the tag.
  int guard = 0;
  while (!h.step(true) && guard < 64) ++guard;
  EXPECT_NE(h.supervisor->state(kTag), link_state::suspended);
  EXPECT_GT(h.supervisor->stats(kTag).recoveries, 0u);
}

TEST(LinkSupervisorTest, FallbackStopsAtTheRobustFloor) {
  harness h;
  for (int i = 0; i < 600; ++i) h.step(false);
  const auto& rate = h.scheduler.descriptor(kTag).rate;
  tag::tag_rate_config floor_probe = rate;
  EXPECT_FALSE(fallback_rate(floor_probe));  // nothing more robust exists
}

TEST(LinkSupervisorTest, ClampedBackoffPinsTheLadder) {
  arq_config cfg;
  cfg.backoff_base = 2;
  cfg.backoff_cap = 16;
  harness h(cfg);
  const std::size_t expected[] = {2, 4, 8, 16, 16, 16};
  for (std::size_t streak = 1; streak <= 6; ++streak)
    EXPECT_EQ(h.supervisor->clamped_backoff(streak), expected[streak - 1])
        << streak;
}

TEST(LinkSupervisorTest, ClampedBackoffCannotOverflow) {
  arq_config cfg;
  // A base past SIZE_MAX >> 16 overflowed the old shift form and wrapped
  // the ladder around to tiny delays; the clamp must saturate at the cap.
  cfg.backoff_base = std::numeric_limits<std::size_t>::max() - 3;
  cfg.backoff_cap = std::numeric_limits<std::size_t>::max();
  harness h(cfg);
  for (std::size_t streak : {std::size_t{1}, std::size_t{17}, std::size_t{1000},
                             std::numeric_limits<std::size_t>::max()}) {
    const std::size_t backoff = h.supervisor->clamped_backoff(streak);
    EXPECT_GE(backoff, cfg.backoff_base) << streak;
    EXPECT_LE(backoff, cfg.backoff_cap) << streak;
  }
  // Degenerate zeros behave as ones rather than dividing by zero or
  // deferring forever on a zero ladder.
  arq_config zero;
  zero.backoff_base = 0;
  zero.backoff_cap = 0;
  harness hz(zero);
  EXPECT_EQ(hz.supervisor->clamped_backoff(1), 1u);
  EXPECT_EQ(hz.supervisor->clamped_backoff(9), 1u);
}

TEST(LinkSupervisorTest, SaturatedBackoffStillParksTheTag) {
  // Drive the huge-base ladder through a real transaction failure: the
  // defer must park the tag (saturating arithmetic end to end), not wrap
  // around and poll it again immediately.
  arq_config cfg;
  cfg.max_retries = 0;
  cfg.fallback_after = 1;
  cfg.backoff_base = std::numeric_limits<std::size_t>::max() - 3;
  cfg.backoff_cap = std::numeric_limits<std::size_t>::max();
  harness h(cfg);
  ASSERT_TRUE(h.step(false));  // fail -> fallback -> defer(~SIZE_MAX)
  EXPECT_EQ(h.supervisor->state(kTag), link_state::backoff);
  for (int i = 0; i < 32; ++i) EXPECT_FALSE(h.step(true));
  EXPECT_GE(h.supervisor->stats(kTag).deferred_polls, 32u);
}

TEST(LinkSupervisorTest, ErasuresNeverStepTheRateDown) {
  arq_config cfg;
  cfg.erasure_backoff_after = 4;
  cfg.erasure_backoff = 2;
  harness h(cfg);
  std::size_t polls = 0;
  for (int i = 0; i < 40; ++i) {
    const auto id = h.supervisor->next();
    if (!id) continue;
    ++polls;
    h.supervisor->report_symbol_result(*id, false, 0.0);
  }
  // The rate is untouched and no retries/fallbacks were burned...
  EXPECT_EQ(h.scheduler.descriptor(kTag).rate.symbol_rate_hz,
            kStartRate.symbol_rate_hz);
  EXPECT_EQ(h.supervisor->stats(kTag).retries, 0u);
  EXPECT_EQ(h.supervisor->stats(kTag).fallbacks, 0u);
  // ...but long erasure runs did defer polls in fixed-size steps.
  const auto& coding = h.supervisor->coding(kTag);
  EXPECT_EQ(coding.symbols_erased, polls);
  EXPECT_GT(coding.erasure_backoffs, 0u);
  EXPECT_LT(polls, 40u);
  // A delivered symbol recovers the link immediately.
  int guard = 0;
  std::optional<std::uint32_t> id;
  while (!(id = h.supervisor->next()) && guard < 16) ++guard;
  ASSERT_TRUE(id.has_value());
  h.supervisor->report_symbol_result(*id, true, 256.0);
  EXPECT_EQ(h.supervisor->state(kTag), link_state::healthy);
  EXPECT_EQ(h.supervisor->coding(kTag).symbols_delivered, 1u);
}

TEST(LinkSupervisorTest, BlockOutcomesFollowTheRepairBudget) {
  arq_config cfg;
  cfg.max_repair_rounds = 2;
  harness h(cfg);
  EXPECT_EQ(h.supervisor->report_block_outcome(kTag, phy::block_status::pending),
            coded_directive::send_repair);
  EXPECT_EQ(h.supervisor->report_block_outcome(kTag, phy::block_status::pending),
            coded_directive::send_repair);
  EXPECT_EQ(h.supervisor->report_block_outcome(kTag, phy::block_status::pending),
            coded_directive::abandon_block);
  const auto& coding = h.supervisor->coding(kTag);
  EXPECT_EQ(coding.repair_rounds, 2u);
  EXPECT_EQ(coding.blocks_abandoned, 1u);
  // The budget resets per block: a decode clears it.
  EXPECT_EQ(h.supervisor->report_block_outcome(kTag, phy::block_status::decoded),
            coded_directive::continue_stream);
  EXPECT_EQ(h.supervisor->report_block_outcome(kTag, phy::block_status::pending),
            coded_directive::send_repair);
  // An unrecoverable verdict abandons unconditionally.
  EXPECT_EQ(h.supervisor->report_block_outcome(
                kTag, phy::block_status::unrecoverable),
            coded_directive::abandon_block);
  EXPECT_EQ(h.supervisor->coding(kTag).blocks_decoded, 1u);
  EXPECT_EQ(h.supervisor->coding(kTag).blocks_abandoned, 2u);
}

}  // namespace
}  // namespace backfi::mac
