#include "channel/drift.h"

#include <gtest/gtest.h>

#include <cmath>

#include "channel/multipath.h"
#include "dsp/rng.h"

namespace backfi::channel {
namespace {

multipath_profile test_profile() { return tag_link_profile(-40.0); }

cvec initial_taps(std::uint64_t seed) {
  dsp::rng gen(seed);
  return draw_multipath(test_profile(), gen);
}

TEST(Drift, RhoFollowsCoherenceFormula) {
  drift_config off;
  EXPECT_FALSE(off.enabled());
  EXPECT_DOUBLE_EQ(off.rho(), 1.0);

  drift_config cfg{.coherence_packets = 64.0};
  EXPECT_TRUE(cfg.enabled());
  EXPECT_DOUBLE_EQ(cfg.rho(), std::exp(-1.0 / 64.0));
}

TEST(Drift, DisabledConsumesZeroDrawsAndHoldsTapsExactly) {
  cvec taps = initial_taps(5);
  const cvec before = taps;
  dsp::rng gen(99);
  dsp::rng twin(99);

  evolve_multipath(taps, test_profile(), drift_config{}, gen);

  for (std::size_t k = 0; k < taps.size(); ++k) EXPECT_EQ(taps[k], before[k]);
  EXPECT_EQ(gen.next_u64(), twin.next_u64());  // stream untouched
}

TEST(Drift, OneStepConsumesExactlyOneMultipathRealization) {
  cvec taps = initial_taps(5);
  const drift_config cfg{.coherence_packets = 16.0};
  dsp::rng gen(1234);
  dsp::rng twin(1234);

  evolve_multipath(taps, test_profile(), cfg, gen);
  (void)draw_multipath(test_profile(), twin);  // the one innovation draw

  EXPECT_EQ(gen.next_u64(), twin.next_u64());
}

TEST(Drift, EvolutionIsDeterministicGivenSeed) {
  const drift_config cfg{.coherence_packets = 8.0};
  cvec a = initial_taps(7);
  cvec b = a;
  dsp::rng gen_a(42);
  dsp::rng gen_b(42);
  for (int k = 0; k < 20; ++k) {
    evolve_multipath(a, test_profile(), cfg, gen_a);
    evolve_multipath(b, test_profile(), cfg, gen_b);
  }
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) EXPECT_EQ(a[k], b[k]);
}

TEST(Drift, StepMixesInitialAndInnovationWithAr1Weights) {
  // One step must equal rho*old + sqrt(1-rho^2)*g with g the realization a
  // twin generator draws — the AR(1) recurrence verbatim.
  const drift_config cfg{.coherence_packets = 4.0};
  cvec taps = initial_taps(11);
  const cvec old = taps;
  dsp::rng gen(77);
  dsp::rng twin(77);
  evolve_multipath(taps, test_profile(), cfg, gen);
  const cvec g = draw_multipath(test_profile(), twin);

  const double rho = cfg.rho();
  const double mix = std::sqrt(1.0 - rho * rho);
  ASSERT_EQ(taps.size(), old.size());
  for (std::size_t k = 0; k < taps.size(); ++k)
    EXPECT_EQ(taps[k], rho * old[k] + mix * g[k]);
}

TEST(Drift, MarginalPowerIsPreservedAlongTheStream) {
  // rho^2 + (1 - rho^2) = 1, so the expected tap power is invariant: a
  // long drifted stream averages to the profile's power, not to zero or
  // infinity. Statistical bound, generous tolerance.
  const multipath_profile profile = test_profile();
  const drift_config cfg{.coherence_packets = 4.0};
  const int streams = 64;
  const int steps = 50;
  double drifted_power = 0.0;
  double fresh_power = 0.0;
  dsp::rng gen(2026);
  for (int s = 0; s < streams; ++s) {
    cvec taps = draw_multipath(profile, gen);
    fresh_power += tap_power(taps);
    for (int k = 0; k < steps; ++k) evolve_multipath(taps, profile, cfg, gen);
    drifted_power += tap_power(taps);
  }
  drifted_power /= streams;
  fresh_power /= streams;
  EXPECT_GT(drifted_power, 0.2 * fresh_power);
  EXPECT_LT(drifted_power, 5.0 * fresh_power);
}

TEST(Drift, AdjacentStepsDecorrelateGradually) {
  // With a long coherence the channel after one step stays close to where
  // it was; with a tiny coherence it jumps to a nearly fresh realization.
  const multipath_profile profile = test_profile();
  auto step_distance = [&](double coherence) {
    cvec taps = initial_taps(3);
    const cvec before = taps;
    dsp::rng gen(404);
    evolve_multipath(taps, profile, drift_config{.coherence_packets = coherence},
                     gen);
    double num = 0.0;
    double den = 0.0;
    for (std::size_t k = 0; k < taps.size(); ++k) {
      num += std::norm(taps[k] - before[k]);
      den += std::norm(before[k]);
    }
    return num / den;
  };
  EXPECT_LT(step_distance(1000.0), step_distance(0.5));
  EXPECT_LT(step_distance(1000.0), 0.01);  // ~static over one packet
}

}  // namespace
}  // namespace backfi::channel
