#include "channel/awgn.h"

#include <gtest/gtest.h>

#include "dsp/math_util.h"
#include "dsp/vec_ops.h"

namespace backfi::channel {
namespace {

TEST(AwgnTest, AddedNoisePowerMatches) {
  dsp::rng gen(1);
  cvec x(100000, cplx{0.0, 0.0});
  add_awgn(x, 0.04, gen);
  EXPECT_NEAR(dsp::mean_power(x), 0.04, 0.002);
}

TEST(AwgnTest, ZeroPowerIsNoOp) {
  dsp::rng gen(2);
  cvec x(100, cplx{1.0, 1.0});
  add_awgn(x, 0.0, gen);
  for (const auto& v : x) EXPECT_EQ(v, cplx(1.0, 1.0));
}

TEST(AwgnTest, NoiseIsAdditive) {
  dsp::rng gen_a(3), gen_b(3);
  cvec zeros(64, cplx{0.0, 0.0});
  cvec signal(64, cplx{2.0, -1.0});
  add_awgn(zeros, 0.1, gen_a);
  add_awgn(signal, 0.1, gen_b);
  for (std::size_t i = 0; i < 64; ++i)
    EXPECT_NEAR(std::abs((signal[i] - cplx(2.0, -1.0)) - zeros[i]), 0.0, 1e-12);
}

TEST(AwgnTest, NormalizedNoisePowerFor20dBmTransmitter) {
  // Noise floor -95 dBm vs 20 dBm carrier -> -115 dB relative.
  const double p = normalized_noise_power(20.0, 20e6, 6.0);
  EXPECT_NEAR(dsp::to_db(p), -115.0, 0.3);
}

TEST(AwgnTest, NormalizedNoiseScalesWithTxPower) {
  const double p20 = normalized_noise_power(20.0, 20e6, 6.0);
  const double p30 = normalized_noise_power(30.0, 20e6, 6.0);
  EXPECT_NEAR(p20 / p30, 10.0, 1e-9);
}

}  // namespace
}  // namespace backfi::channel
