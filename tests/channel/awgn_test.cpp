#include "channel/awgn.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dsp/math_util.h"
#include "dsp/vec_ops.h"

namespace backfi::channel {
namespace {

TEST(AwgnTest, AddedNoisePowerMatches) {
  dsp::rng gen(1);
  cvec x(100000, cplx{0.0, 0.0});
  add_awgn(x, 0.04, gen);
  EXPECT_NEAR(dsp::mean_power(x), 0.04, 0.002);
}

TEST(AwgnTest, ZeroPowerIsNoOp) {
  dsp::rng gen(2);
  cvec x(100, cplx{1.0, 1.0});
  add_awgn(x, 0.0, gen);
  for (const auto& v : x) EXPECT_EQ(v, cplx(1.0, 1.0));
}

// Pins the stream-position contract from awgn.h: noise_power <= 0 returns
// without consuming a single draw, so later draws from the generator are
// exactly what they would be had add_awgn never been called. Silence-gap
// simulation relies on this to keep trial streams aligned.
TEST(AwgnTest, ZeroOrNegativePowerLeavesStreamUntouched) {
  dsp::rng touched(7);
  dsp::rng untouched(7);
  cvec x(64, cplx{1.0, -1.0});
  add_awgn(x, 0.0, touched);
  add_awgn(x, -1.0, touched);
  cvec empty;
  add_awgn(empty, 0.25, touched);  // empty span: also zero draws
  EXPECT_TRUE(touched.save() == untouched.save());
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(touched.next_u64(), untouched.next_u64());
  }
  EXPECT_EQ(touched.gaussian(), untouched.gaussian());
}

// A replay-cache hit must be bitwise identical to the miss that populated
// it: same added samples, same generator end state. Distinct seeds make the
// first call a guaranteed miss (the key covers the full RNG state).
TEST(AwgnTest, CacheHitMatchesMissBitwise) {
  const auto before = awgn_cache_stats();
  dsp::rng gen_a(0xA31Fu), gen_b(0xA31Fu);
  cvec miss(257, cplx{0.5, -0.25});
  cvec hit = miss;
  add_awgn(miss, 0.04, gen_a);
  add_awgn(hit, 0.04, gen_b);
  for (std::size_t i = 0; i < miss.size(); ++i) {
    EXPECT_EQ(miss[i].real(), hit[i].real()) << "sample " << i;
    EXPECT_EQ(miss[i].imag(), hit[i].imag()) << "sample " << i;
  }
  EXPECT_TRUE(gen_a.save() == gen_b.save());
  EXPECT_EQ(gen_a.uniform(), gen_b.uniform());
  const auto after = awgn_cache_stats();
  if (after.hits == before.hits) {
    // Cache disabled in this environment (BACKFI_NOISE_CACHE_MB=0): both
    // calls took the generate path, which the comparisons above still pin.
    EXPECT_EQ(after.entries, 0u);
  } else {
    EXPECT_GE(after.hits, before.hits + 1);
  }
}

// The noise amplitude is applied outside the cached unit-power samples, so
// a hit at a different noise power is still bitwise identical to scalar
// synthesis at that power: x[i] += sqrt(p) * gen.complex_gaussian().
TEST(AwgnTest, CacheHitAtDifferentPowerMatchesScalarSynthesis) {
  dsp::rng warm(0xB442u);
  cvec x(123, cplx{0.0, 0.0});
  add_awgn(x, 0.04, warm);  // populate (or just exercise) the cache key

  dsp::rng gen(0xB442u), ref_gen(0xB442u);
  cvec y(123, cplx{1.0, 2.0});
  cvec ref = y;
  add_awgn(y, 0.09, gen);
  const double amp = std::sqrt(0.09);
  for (auto& v : ref) v += amp * ref_gen.complex_gaussian();
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_EQ(y[i].real(), ref[i].real()) << "sample " << i;
    EXPECT_EQ(y[i].imag(), ref[i].imag()) << "sample " << i;
  }
  EXPECT_TRUE(gen.save() == ref_gen.save());
}

TEST(AwgnTest, NoiseIsAdditive) {
  dsp::rng gen_a(3), gen_b(3);
  cvec zeros(64, cplx{0.0, 0.0});
  cvec signal(64, cplx{2.0, -1.0});
  add_awgn(zeros, 0.1, gen_a);
  add_awgn(signal, 0.1, gen_b);
  for (std::size_t i = 0; i < 64; ++i)
    EXPECT_NEAR(std::abs((signal[i] - cplx(2.0, -1.0)) - zeros[i]), 0.0, 1e-12);
}

TEST(AwgnTest, NormalizedNoisePowerFor20dBmTransmitter) {
  // Noise floor -95 dBm vs 20 dBm carrier -> -115 dB relative.
  const double p = normalized_noise_power(20.0, 20e6, 6.0);
  EXPECT_NEAR(dsp::to_db(p), -115.0, 0.3);
}

TEST(AwgnTest, NormalizedNoiseScalesWithTxPower) {
  const double p20 = normalized_noise_power(20.0, 20e6, 6.0);
  const double p30 = normalized_noise_power(30.0, 20e6, 6.0);
  EXPECT_NEAR(p20 / p30, 10.0, 1e-9);
}

}  // namespace
}  // namespace backfi::channel
