#include "channel/pathloss.h"

#include <gtest/gtest.h>

#include "dsp/types.h"

namespace backfi::channel {
namespace {

TEST(PathlossTest, FreeSpaceAt1m2p4GHz) {
  // Classic reference value: ~40.05 dB at 1 m, 2.437 GHz.
  EXPECT_NEAR(free_space_path_loss_db(1.0, carrier_hz), 40.2, 0.3);
}

TEST(PathlossTest, FreeSpaceDoublesWith6dBPerOctave) {
  const double pl1 = free_space_path_loss_db(1.0, carrier_hz);
  const double pl2 = free_space_path_loss_db(2.0, carrier_hz);
  EXPECT_NEAR(pl2 - pl1, 6.02, 0.01);
}

TEST(PathlossTest, LogDistanceMatchesFreeSpaceForExponent2) {
  for (double d : {0.5, 1.0, 3.0, 7.0}) {
    EXPECT_NEAR(log_distance_path_loss_db(d, carrier_hz, 2.0),
                free_space_path_loss_db(d, carrier_hz), 1e-9)
        << d;
  }
}

TEST(PathlossTest, HigherExponentLosesMoreBeyondReference) {
  EXPECT_GT(log_distance_path_loss_db(5.0, carrier_hz, 3.0),
            log_distance_path_loss_db(5.0, carrier_hz, 2.0));
  // At the 1 m reference they agree.
  EXPECT_NEAR(log_distance_path_loss_db(1.0, carrier_hz, 3.0),
              log_distance_path_loss_db(1.0, carrier_hz, 2.0), 1e-9);
}

TEST(PathlossTest, AmplitudeGainIncludesAntennaGain) {
  const double without = one_way_amplitude_gain(2.0, carrier_hz, 2.0, 0.0);
  const double with = one_way_amplitude_gain(2.0, carrier_hz, 2.0, 3.0);
  EXPECT_NEAR(with / without, std::pow(10.0, 3.0 / 20.0), 1e-9);
}

TEST(PathlossTest, NoiseFloor20MHz) {
  // -174 dBm/Hz + 10log10(20e6) = -101 dBm; +6 dB NF = -95 dBm.
  EXPECT_NEAR(noise_floor_dbm(20e6, 6.0), -95.0, 0.2);
}

}  // namespace
}  // namespace backfi::channel
