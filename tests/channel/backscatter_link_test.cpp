#include "channel/backscatter_link.h"

#include <gtest/gtest.h>

#include "channel/pathloss.h"
#include "dsp/math_util.h"

namespace backfi::channel {
namespace {

TEST(BackscatterLinkTest, ChannelShapesAndNoise) {
  dsp::rng gen(1);
  const link_budget budget;
  const auto ch = draw_backscatter_channels(budget, 2.0, gen);
  EXPECT_EQ(ch.h_env.size(), 6u);
  EXPECT_EQ(ch.h_f.size(), 3u);
  EXPECT_EQ(ch.h_b.size(), 3u);
  EXPECT_NEAR(dsp::to_db(ch.noise_power), -115.0, 0.5);
}

TEST(BackscatterLinkTest, LeakageDominatesSelfInterference) {
  dsp::rng gen(2);
  const link_budget budget;
  double leak_power = 0.0;
  const int trials = 500;
  for (int t = 0; t < trials; ++t) {
    const auto ch = draw_backscatter_channels(budget, 2.0, gen);
    leak_power += std::norm(ch.h_env[0]);
  }
  // Circulator isolation 20 dB -> first tap ~-20 dB, far above the
  // -45 dB environment reflections.
  EXPECT_NEAR(dsp::to_db(leak_power / trials), -20.0, 1.5);
}

TEST(BackscatterLinkTest, ForwardChannelPowerTracksPathLoss) {
  dsp::rng gen(3);
  const link_budget budget;
  for (double d : {1.0, 3.0, 5.0}) {
    double acc = 0.0;
    const int trials = 2000;
    for (int t = 0; t < trials; ++t)
      acc += tap_power(draw_backscatter_channels(budget, d, gen).h_f);
    const double expected_db =
        -log_distance_path_loss_db(d, budget.frequency_hz,
                                   budget.path_loss_exponent) +
        budget.tag_antenna_gain_dbi;
    EXPECT_NEAR(dsp::to_db(acc / trials), expected_db, 0.7) << d;
  }
}

TEST(BackscatterLinkTest, SelfInterferenceDwarfsBackscatter) {
  // The core difficulty of the paper: self-interference is tens of dB above
  // the backscatter signal.
  dsp::rng gen(4);
  const link_budget budget;
  const auto ch = draw_backscatter_channels(budget, 3.0, gen);
  const double si_db = dsp::to_db(tap_power(ch.h_env));
  const double bs_db = dsp::to_db(tap_power(ch.h_f) * tap_power(ch.h_b)) -
                       budget.tag_insertion_loss_db;
  EXPECT_GT(si_db - bs_db, 40.0);
}

TEST(BackscatterLinkTest, IncidentPowerWakesTagWithinRange) {
  const link_budget budget;
  // Paper: wake-up radio sensitivity -41 dBm gives ~5 m range.
  EXPECT_GT(incident_power_at_tag_dbm(budget, 1.0), -41.0);
  EXPECT_GT(incident_power_at_tag_dbm(budget, 5.0), -41.0);
  // Well beyond the design range the tag cannot wake.
  EXPECT_LT(incident_power_at_tag_dbm(budget, 40.0), -41.0);
}

TEST(BackscatterLinkTest, ExpectedBackscatterPowerAt1m) {
  const link_budget budget;
  // 20 dBm - 2*40.2 dB + 6 dB - 8 dB = -62.4 dBm (approx).
  EXPECT_NEAR(expected_backscatter_power_dbm(budget, 1.0), -62.4, 1.0);
}

TEST(BackscatterLinkTest, OneWayChannelGainIncludesRxAntenna) {
  dsp::rng gen(5);
  const link_budget budget;
  double p0 = 0.0, p3 = 0.0;
  const int trials = 3000;
  for (int t = 0; t < trials; ++t) {
    p0 += tap_power(draw_one_way_channel(budget, 2.0, 0.0, gen));
    p3 += tap_power(draw_one_way_channel(budget, 2.0, 3.0, gen));
  }
  EXPECT_NEAR(dsp::to_db(p3 / p0), 3.0, 0.5);
}

}  // namespace
}  // namespace backfi::channel
