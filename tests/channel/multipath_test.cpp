#include "channel/multipath.h"

#include <gtest/gtest.h>

#include "dsp/math_util.h"
#include "dsp/vec_ops.h"

namespace backfi::channel {
namespace {

TEST(MultipathTest, TapCountMatchesProfile) {
  dsp::rng gen(1);
  const cvec taps = draw_multipath({.n_taps = 5}, gen);
  EXPECT_EQ(taps.size(), 5u);
}

TEST(MultipathTest, AveragePowerMatchesTotalGain) {
  dsp::rng gen(2);
  const multipath_profile profile{.n_taps = 4, .total_gain_db = -20.0};
  double acc = 0.0;
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) acc += tap_power(draw_multipath(profile, gen));
  const double mean_db = dsp::to_db(acc / trials);
  EXPECT_NEAR(mean_db, -20.0, 0.5);
}

TEST(MultipathTest, ExponentialProfileDecaysWithDelay) {
  dsp::rng gen(3);
  const multipath_profile profile{
      .n_taps = 4, .delay_spread_ns = 50.0, .rician_k_db = -100.0};
  std::vector<double> power(4, 0.0);
  const int trials = 5000;
  for (int t = 0; t < trials; ++t) {
    const cvec taps = draw_multipath(profile, gen);
    for (std::size_t k = 0; k < 4; ++k) power[k] += std::norm(taps[k]);
  }
  for (std::size_t k = 1; k < 4; ++k) EXPECT_LT(power[k], power[k - 1]) << k;
  // 50 ns sample spacing over 50 ns delay spread -> e^-1 per tap.
  EXPECT_NEAR(power[1] / power[0], std::exp(-1.0), 0.05);
}

TEST(MultipathTest, RicianFirstTapHasSmallVariance) {
  dsp::rng gen(4);
  const multipath_profile strong_los{
      .n_taps = 2, .rician_k_db = 20.0, .total_gain_db = 0.0};
  // With K = 100 the first tap magnitude is nearly deterministic.
  double min_mag = 1e9, max_mag = 0.0;
  for (int t = 0; t < 500; ++t) {
    const cvec taps = draw_multipath(strong_los, gen);
    min_mag = std::min(min_mag, std::abs(taps[0]));
    max_mag = std::max(max_mag, std::abs(taps[0]));
  }
  EXPECT_GT(min_mag / max_mag, 0.5);
}

TEST(MultipathTest, RayleighTapsAreCircular) {
  dsp::rng gen(5);
  const multipath_profile profile{.n_taps = 2, .rician_k_db = -100.0};
  cplx mean{0.0, 0.0};
  const int trials = 5000;
  for (int t = 0; t < trials; ++t) mean += draw_multipath(profile, gen)[1];
  EXPECT_LT(std::abs(mean) / trials, 0.02);
}

TEST(MultipathTest, ApplyChannelMatchesConvolution) {
  dsp::rng gen(6);
  cvec x(50);
  for (auto& v : x) v = gen.complex_gaussian();
  const cvec taps = draw_multipath({.n_taps = 3}, gen);
  const cvec y = apply_channel(x, taps);
  ASSERT_EQ(y.size(), x.size());
  // Spot-check a middle sample.
  cplx expected{0.0, 0.0};
  for (std::size_t k = 0; k < taps.size(); ++k) expected += taps[k] * x[25 - k];
  EXPECT_NEAR(std::abs(y[25] - expected), 0.0, 1e-12);
}

TEST(MultipathTest, DeterministicGivenSeed) {
  dsp::rng a(7), b(7);
  const cvec ta = draw_multipath({.n_taps = 3}, a);
  const cvec tb = draw_multipath({.n_taps = 3}, b);
  for (std::size_t k = 0; k < 3; ++k)
    EXPECT_EQ(ta[k], tb[k]);
}

}  // namespace
}  // namespace backfi::channel
