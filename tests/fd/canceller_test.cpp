#include "fd/canceller.h"

#include <gtest/gtest.h>

#include "channel/awgn.h"
#include "channel/multipath.h"
#include "dsp/math_util.h"
#include "dsp/rng.h"
#include "dsp/vec_ops.h"
#include "wifi/ppdu.h"

namespace backfi::fd {
namespace {

/// Self-interference scenario: WiFi excitation through an environment
/// channel with strong leakage, plus thermal noise.
struct si_scenario {
  cvec tx;
  cvec rx;
  double noise_power;
};

si_scenario make_scenario(std::uint64_t seed, double noise_db = -80.0) {
  dsp::rng gen(seed);
  si_scenario s;
  s.tx = wifi::random_ppdu(200, {.rate = wifi::wifi_rate::mbps24}, seed).samples;
  cvec h_env = channel::draw_multipath(
      {.n_taps = 5, .delay_spread_ns = 80.0, .rician_k_db = -100.0,
       .total_gain_db = -45.0},
      gen);
  h_env[0] += 0.1;  // -20 dB circulator leakage
  s.rx = channel::apply_channel(s.tx, h_env);
  s.noise_power = dsp::from_db(noise_db);
  channel::add_awgn(s.rx, s.noise_power, gen);
  return s;
}

TEST(AnalogCancellerTest, AchievesTensOfDbButIsQuantizationLimited) {
  const si_scenario s = make_scenario(1);
  analog_canceller analog({.n_taps = 6, .coefficient_bits = 7});
  analog.adapt(std::span(s.tx).first(320), std::span(s.rx).first(320));
  const cvec res = analog.cancel(s.tx, s.rx);
  const double depth = cancellation_depth_db(s.rx, res);
  EXPECT_GT(depth, 25.0);
  // Finite coefficient resolution keeps the analog stage well short of the
  // ~60 dB a full-precision filter would reach here.
  EXPECT_LT(depth, 55.0);
}

TEST(DigitalCancellerTest, CancelsToNearNoiseFloor) {
  const si_scenario s = make_scenario(2);
  digital_canceller digital({.n_taps = 8});
  digital.adapt(std::span(s.tx).first(320), std::span(s.rx).first(320));
  const cvec res = digital.cancel(s.tx, s.rx);
  // Residual within a few dB of the thermal floor.
  const double resid_db = dsp::to_db(dsp::mean_power(res));
  EXPECT_LT(resid_db, -80.0 + 4.0);
}

TEST(DigitalCancellerTest, MoreTrainingGivesDeeperCancellation) {
  const si_scenario s = make_scenario(3, -60.0);
  double depth_short, depth_long;
  {
    digital_canceller d({.n_taps = 8});
    d.adapt(std::span(s.tx).first(80), std::span(s.rx).first(80));
    depth_short = cancellation_depth_db(s.rx, d.cancel(s.tx, s.rx));
  }
  {
    digital_canceller d({.n_taps = 8});
    d.adapt(std::span(s.tx).first(640), std::span(s.rx).first(640));
    depth_long = cancellation_depth_db(s.rx, d.cancel(s.tx, s.rx));
  }
  EXPECT_GT(depth_long, depth_short);
}

TEST(DigitalCancellerTest, RecoversTrueChannelTaps) {
  dsp::rng gen(4);
  cvec tx(2000);
  for (auto& v : tx) v = gen.complex_gaussian();
  const cvec h = {{0.1, 0.02}, {-0.03, 0.01}, {0.005, -0.01}};
  const cvec rx = channel::apply_channel(tx, h);
  digital_canceller d({.n_taps = 3});
  d.adapt(tx, rx);
  for (std::size_t k = 0; k < h.size(); ++k)
    EXPECT_NEAR(std::abs(d.taps()[k] - h[k]), 0.0, 1e-6) << k;
}

TEST(CancellerTest, UnadaptedCancellerIsPassThrough) {
  const si_scenario s = make_scenario(5);
  const analog_canceller analog;
  const cvec res = analog.cancel(s.tx, s.rx);
  for (std::size_t i = 0; i < 100; ++i)
    EXPECT_EQ(res[i], s.rx[i]);
}

TEST(CancellerTest, SilentPeriodProtectsBackscatter) {
  // The paper's key protocol property: because the canceller adapts while
  // the tag is silent, the backscatter component survives cancellation.
  dsp::rng gen(6);
  si_scenario s = make_scenario(6, -100.0);
  // Backscatter: scaled, delayed, phase-rotated copy starting AFTER the
  // silent window (sample 320 on).
  const double bs_amp = dsp::db_to_amplitude(-55.0);
  cvec backscatter(s.rx.size(), cplx{0.0, 0.0});
  for (std::size_t n = 322; n < s.rx.size(); ++n)
    backscatter[n] = bs_amp * s.tx[n - 2] * dsp::phasor(1.0);
  cvec rx_with_bs = s.rx;
  dsp::add_in_place(rx_with_bs, backscatter);

  digital_canceller d({.n_taps = 8});
  d.adapt(std::span(s.tx).first(320), std::span(rx_with_bs).first(320));
  const cvec res = d.cancel(s.tx, rx_with_bs);

  // Residual after the silent window should retain the backscatter power.
  const auto res_data = std::span(res).subspan(400, res.size() - 400);
  const auto bs_data = std::span(backscatter).subspan(400, backscatter.size() - 400);
  const double kept_db =
      dsp::to_db(dsp::mean_power(res_data) / dsp::mean_power(bs_data));
  EXPECT_NEAR(kept_db, 0.0, 1.0);
}

TEST(CancellerTest, AdaptingDuringBackscatterCancelsIt) {
  // Failure injection: skipping the silent period (adapting while the tag
  // modulates a CONSTANT symbol) absorbs the backscatter into the SI
  // estimate and cancels it — the bug the silent period exists to avoid.
  dsp::rng gen(7);
  si_scenario s = make_scenario(7, -100.0);
  const double bs_amp = dsp::db_to_amplitude(-55.0);
  cvec backscatter(s.rx.size(), cplx{0.0, 0.0});
  for (std::size_t n = 2; n < s.rx.size(); ++n)
    backscatter[n] = bs_amp * s.tx[n - 2] * dsp::phasor(1.0);
  cvec rx_with_bs = s.rx;
  dsp::add_in_place(rx_with_bs, backscatter);

  digital_canceller d({.n_taps = 8});
  d.adapt(std::span(s.tx).first(320), std::span(rx_with_bs).first(320));
  const cvec res = d.cancel(s.tx, rx_with_bs);
  const auto res_data = std::span(res).subspan(400, res.size() - 400);
  const auto bs_data = std::span(backscatter).subspan(400, backscatter.size() - 400);
  const double kept_db =
      dsp::to_db(dsp::mean_power(res_data) / dsp::mean_power(bs_data));
  EXPECT_LT(kept_db, -20.0);  // backscatter mostly destroyed
}

TEST(DigitalCancellerTest, FusedQuantizeCancelMatchesSplitSweepsBitExactly) {
  // cancel_quantized_into interleaves the ADC sweep with the cancellation
  // convolution in chunks; every sample must still carry the exact bits of
  // quantize_into_saturation() followed by cancel_into(). Cover the plain
  // linear fit and the widely-linear + DC configuration (conj/dc branches
  // run as element-wise tails over the fused output).
  for (const bool wl : {false, true}) {
    const si_scenario s = make_scenario(wl ? 31 : 30);
    digital_canceller d({.n_taps = 8, .widely_linear = wl, .remove_dc = wl});
    canceller_scratch scratch;
    // Adapt on a pre-quantized silent window, as the receive chain does.
    const adc_config adc{.bits = 12, .full_scale = agc_full_scale(s.rx)};
    cvec reference_digitized;
    bool reference_saturated = false;
    quantize_into_saturation(s.rx, adc, reference_digitized,
                             reference_saturated);
    d.adapt(std::span(s.tx).first(320),
            std::span<const cplx>(reference_digitized).first(320), scratch);
    cvec reference_cleaned;
    d.cancel_into(s.tx, reference_digitized, reference_cleaned, scratch);

    cvec digitized, cleaned;
    bool saturated = true;  // must be overwritten
    d.cancel_quantized_into(s.tx, s.rx, adc, digitized, cleaned, saturated,
                            scratch);
    EXPECT_EQ(saturated, reference_saturated);
    ASSERT_EQ(digitized.size(), reference_digitized.size());
    ASSERT_EQ(cleaned.size(), reference_cleaned.size());
    for (std::size_t i = 0; i < cleaned.size(); ++i) {
      ASSERT_EQ(digitized[i], reference_digitized[i]) << "wl " << wl << " @" << i;
      ASSERT_EQ(cleaned[i], reference_cleaned[i]) << "wl " << wl << " @" << i;
    }
  }
}

}  // namespace
}  // namespace backfi::fd
