#include "fd/adc.h"

#include <gtest/gtest.h>
#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>

#include "dsp/rng.h"
#include "dsp/vec_ops.h"

namespace backfi::fd {
namespace {

TEST(AdcTest, QuantizationErrorBoundedByHalfStep) {
  dsp::rng gen(1);
  cvec x(1000);
  for (auto& v : x) v = 0.5 * gen.complex_gaussian();
  const adc_config cfg{.bits = 10, .full_scale = 4.0};
  const double step = 2.0 * cfg.full_scale / 1024.0;
  const cvec q = quantize(x, cfg);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_LE(std::abs(q[i].real() - x[i].real()), step / 2 + 1e-12);
    EXPECT_LE(std::abs(q[i].imag() - x[i].imag()), step / 2 + 1e-12);
  }
}

TEST(AdcTest, ClipsBeyondFullScale) {
  const cvec x = {{10.0, -10.0}};
  const cvec q = quantize(x, {.bits = 8, .full_scale = 1.0});
  EXPECT_LE(q[0].real(), 1.0);
  EXPECT_GE(q[0].imag(), -1.0);
  EXPECT_NEAR(q[0].real(), 1.0, 0.01);
}

TEST(AdcTest, MeasuredNoiseMatchesTheory) {
  dsp::rng gen(2);
  cvec x(200000);
  for (auto& v : x) v = 0.2 * gen.complex_gaussian();
  const adc_config cfg{.bits = 8, .full_scale = 1.0};
  const cvec q = quantize(x, cfg);
  double err = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) err += std::norm(q[i] - x[i]);
  err /= static_cast<double>(x.size());
  EXPECT_NEAR(err / quantization_noise_power(cfg), 1.0, 0.1);
}

TEST(AdcTest, MoreBitsLessNoise) {
  EXPECT_LT(quantization_noise_power({.bits = 12, .full_scale = 1.0}),
            quantization_noise_power({.bits = 8, .full_scale = 1.0}) / 100.0);
}

TEST(AdcTest, AgcTracksInputRms) {
  dsp::rng gen(3);
  cvec x(5000);
  for (auto& v : x) v = 0.1 * gen.complex_gaussian();
  EXPECT_NEAR(agc_full_scale(x, 4.0), 0.4, 0.02);
}


TEST(AdcTest, QuantizeIntoMatchesQuantize) {
  dsp::rng gen(91);
  cvec x(5000);
  for (auto& v : x) v = 0.8 * gen.complex_gaussian();
  x[7] = cplx{10.0, -10.0};  // beyond full scale on both axes
  adc_config cfg;
  cfg.bits = 10;
  cfg.full_scale = 1.6;
  const cvec ref = quantize(x, cfg);
  cvec out(3, cplx{99.0, 99.0});  // dirty and wrongly sized
  dsp::workspace_stats stats;
  quantize_into(x, cfg, out, &stats);
  ASSERT_EQ(out.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) ASSERT_EQ(out[i], ref[i]) << i;
  const std::uint64_t allocated = stats.bytes_allocated;
  quantize_into(x, cfg, out, &stats);
  EXPECT_EQ(stats.bytes_allocated, allocated);
  EXPECT_GT(stats.bytes_reused, 0u);
}

TEST(AdcTest, QuantizeMatchesScalarRoundReferenceOnHalfwayCodes) {
  // The adc TU compiles with -fno-trapping-math so std::round expands to an
  // inline (vectorized) sequence. round() is exactly specified for every
  // input, so the quantizer grid must match a libm-round reference computed
  // here at default flags — including the half-step inputs where an inexact
  // expansion (e.g. the naive add-0.5-then-truncate) would differ.
  adc_config cfg;
  cfg.bits = 10;
  cfg.full_scale = 1.6;
  const double step = 2.0 * cfg.full_scale / static_cast<double>(1ULL << cfg.bits);
  static double (*volatile libm_round)(double) = &std::round;  // no inlining

  cvec x;
  for (int k = -1030; k <= 1030; ++k) {
    const double half_code = static_cast<double>(k) * step / 2.0;
    x.push_back(cplx{half_code, -half_code});
    x.push_back(cplx{std::nextafter(half_code, 10.0),
                     std::nextafter(half_code, -10.0)});
  }
  const cvec q = quantize(x, cfg);
  ASSERT_EQ(q.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const auto axis = [&](double v) {
      const double clipped = std::clamp(v, -cfg.full_scale, cfg.full_scale);
      return libm_round(clipped / step) * step;
    };
    const cplx want{axis(x[i].real()), axis(x[i].imag())};
    ASSERT_EQ(std::bit_cast<std::uint64_t>(q[i].real()),
              std::bit_cast<std::uint64_t>(want.real()))
        << "sample " << i << " in " << x[i].real();
    ASSERT_EQ(std::bit_cast<std::uint64_t>(q[i].imag()),
              std::bit_cast<std::uint64_t>(want.imag()))
        << "sample " << i << " in " << x[i].imag();
  }
}

}  // namespace
}  // namespace backfi::fd
