#include "fd/adc.h"

#include <gtest/gtest.h>

#include "dsp/rng.h"
#include "dsp/vec_ops.h"

namespace backfi::fd {
namespace {

TEST(AdcTest, QuantizationErrorBoundedByHalfStep) {
  dsp::rng gen(1);
  cvec x(1000);
  for (auto& v : x) v = 0.5 * gen.complex_gaussian();
  const adc_config cfg{.bits = 10, .full_scale = 4.0};
  const double step = 2.0 * cfg.full_scale / 1024.0;
  const cvec q = quantize(x, cfg);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_LE(std::abs(q[i].real() - x[i].real()), step / 2 + 1e-12);
    EXPECT_LE(std::abs(q[i].imag() - x[i].imag()), step / 2 + 1e-12);
  }
}

TEST(AdcTest, ClipsBeyondFullScale) {
  const cvec x = {{10.0, -10.0}};
  const cvec q = quantize(x, {.bits = 8, .full_scale = 1.0});
  EXPECT_LE(q[0].real(), 1.0);
  EXPECT_GE(q[0].imag(), -1.0);
  EXPECT_NEAR(q[0].real(), 1.0, 0.01);
}

TEST(AdcTest, MeasuredNoiseMatchesTheory) {
  dsp::rng gen(2);
  cvec x(200000);
  for (auto& v : x) v = 0.2 * gen.complex_gaussian();
  const adc_config cfg{.bits = 8, .full_scale = 1.0};
  const cvec q = quantize(x, cfg);
  double err = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) err += std::norm(q[i] - x[i]);
  err /= static_cast<double>(x.size());
  EXPECT_NEAR(err / quantization_noise_power(cfg), 1.0, 0.1);
}

TEST(AdcTest, MoreBitsLessNoise) {
  EXPECT_LT(quantization_noise_power({.bits = 12, .full_scale = 1.0}),
            quantization_noise_power({.bits = 8, .full_scale = 1.0}) / 100.0);
}

TEST(AdcTest, AgcTracksInputRms) {
  dsp::rng gen(3);
  cvec x(5000);
  for (auto& v : x) v = 0.1 * gen.complex_gaussian();
  EXPECT_NEAR(agc_full_scale(x, 4.0), 0.4, 0.02);
}

}  // namespace
}  // namespace backfi::fd
