#include "fd/receive_chain.h"

#include <gtest/gtest.h>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "channel/awgn.h"
#include "channel/backscatter_link.h"
#include "dsp/math_util.h"
#include "dsp/vec_ops.h"
#include "wifi/ppdu.h"

namespace backfi::fd {
namespace {

struct chain_scenario {
  cvec tx;
  cvec rx;
  double noise_power;
};

chain_scenario make_scenario(std::uint64_t seed) {
  dsp::rng gen(seed);
  chain_scenario s;
  s.tx = wifi::random_ppdu(300, {.rate = wifi::wifi_rate::mbps24}, seed).samples;
  const channel::link_budget budget;
  const auto ch = channel::draw_backscatter_channels(budget, 2.0, gen);
  s.rx = channel::apply_channel(s.tx, ch.h_env);
  s.noise_power = ch.noise_power;
  channel::add_awgn(s.rx, s.noise_power, gen);
  return s;
}

TEST(ReceiveChainTest, FullChainReachesNearNoiseFloor) {
  const chain_scenario s = make_scenario(1);
  const auto result = run_receive_chain(s.tx, s.rx, 0, 320, {});
  EXPECT_FALSE(result.adc_saturated);
  EXPECT_GT(result.analog_depth_db, 25.0);
  EXPECT_GT(result.total_depth_db, result.analog_depth_db);
  // Residual within ~3 dB of thermal (paper reports 1.7-2.3 dB residue).
  const double excess_db = dsp::to_db(result.residual_power / s.noise_power);
  EXPECT_LT(excess_db, 3.5);
  EXPECT_GE(excess_db, -1.0);
}

TEST(ReceiveChainTest, WithoutAnalogStageAdcLimitsCancellation) {
  const chain_scenario s = make_scenario(2);
  receive_chain_config no_analog;
  no_analog.enable_analog = false;
  no_analog.adc.bits = 8;  // a modest ADC makes the failure stark
  const auto crippled = run_receive_chain(s.tx, s.rx, 0, 320, no_analog);
  const auto full = run_receive_chain(s.tx, s.rx, 0, 320, {});
  // Quantization noise of the full-SI-scale ADC floors the residual far
  // above what the two-stage design achieves.
  EXPECT_GT(crippled.residual_power, 10.0 * full.residual_power);
}

TEST(ReceiveChainTest, DigitalStageAddsDepth) {
  const chain_scenario s = make_scenario(3);
  receive_chain_config analog_only;
  analog_only.enable_digital = false;
  const auto partial = run_receive_chain(s.tx, s.rx, 0, 320, analog_only);
  const auto full = run_receive_chain(s.tx, s.rx, 0, 320, {});
  EXPECT_GT(full.total_depth_db, partial.total_depth_db + 10.0);
}

TEST(ReceiveChainTest, IdealFrontEndSlightlyBetterThanAdc) {
  const chain_scenario s = make_scenario(4);
  receive_chain_config ideal;
  ideal.enable_adc = false;
  const auto with_adc = run_receive_chain(s.tx, s.rx, 0, 320, {});
  const auto without_adc = run_receive_chain(s.tx, s.rx, 0, 320, ideal);
  EXPECT_GE(without_adc.total_depth_db, with_adc.total_depth_db - 1.0);
}

TEST(ReceiveChainTest, CleanedBufferKeepsLength) {
  const chain_scenario s = make_scenario(5);
  const auto result = run_receive_chain(s.tx, s.rx, 0, 320, {});
  EXPECT_EQ(result.cleaned.size(), s.rx.size());
}

TEST(ReceiveChainTest, DegenerateSilentWindowBypassesCancellation) {
  const chain_scenario s = make_scenario(6);
  // Empty, reversed and past-the-end windows must all flag a bypass and
  // pass the input through untouched instead of adapting on garbage.
  for (const auto& [begin, end] :
       {std::pair<std::size_t, std::size_t>{100, 100},
        {320, 100},
        {0, s.rx.size() + 1}}) {
    const auto result = run_receive_chain(s.tx, s.rx, begin, end, {});
    EXPECT_TRUE(result.cancellation_bypassed);
    EXPECT_EQ(result.analog_depth_db, 0.0);
    EXPECT_EQ(result.total_depth_db, 0.0);
    ASSERT_EQ(result.cleaned.size(), s.rx.size());
    for (std::size_t i = 0; i < s.rx.size(); ++i)
      ASSERT_EQ(result.cleaned[i], s.rx[i]);
  }
}

TEST(ReceiveChainTest, MisalignedBuffersBypassCancellation) {
  const chain_scenario s = make_scenario(7);
  const auto result = run_receive_chain(
      std::span(s.tx).first(s.tx.size() - 5), s.rx, 0, 320, {});
  EXPECT_TRUE(result.cancellation_bypassed);
}

TEST(ReceiveChainTest, HardeningOptionsDoNotHurtACleanLink) {
  const chain_scenario s = make_scenario(8);
  receive_chain_config hardened;
  hardened.digital.widely_linear = true;
  hardened.digital.remove_dc = true;
  hardened.track_residual_gain = true;
  const auto plain = run_receive_chain(s.tx, s.rx, 0, 320, {});
  const auto hard = run_receive_chain(s.tx, s.rx, 0, 320, hardened);
  // Widely-linear taps, DC removal and residual tracking must be no-ops
  // (within a dB) when there is no image, offset or rotation to fix.
  EXPECT_LT(hard.residual_power, 1.3 * plain.residual_power);
}

TEST(ReceiveChainTest, FrontEndHookObservesAndMutatesTheResidual) {
  const chain_scenario s = make_scenario(9);
  // A hook that nulls everything leaves only what the digital stage and
  // the depth accounting see: the chain must run it exactly once, between
  // the analog stage and the ADC.
  std::size_t calls = 0;
  receive_chain_config cfg;
  cfg.front_end_hook = [&calls](std::span<cplx> samples) {
    ++calls;
    for (cplx& v : samples) v = {0.0, 0.0};
  };
  const auto result = run_receive_chain(s.tx, s.rx, 0, 320, cfg);
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(dsp::mean_power(result.cleaned), 0.0);
  // The analog stage ran before the hook: its depth is still measured.
  EXPECT_GT(result.analog_depth_db, 25.0);
}


TEST(ReceiveChainTest, ScratchPathBitIdenticalToAllocatingPath) {
  const chain_scenario s = make_scenario(11);
  receive_chain_config configs[2];
  configs[1].track_residual_gain = true;
  for (const auto& cfg : configs) {
    const auto plain = run_receive_chain(s.tx, s.rx, 0, 320, cfg);

    // Dirty the scratch with a different packet first: results must be
    // independent of workspace history.
    receive_chain_scratch scratch;
    dsp::workspace_stats stats;
    scratch.stats = &stats;
    const chain_scenario other = make_scenario(12);
    run_receive_chain(other.tx, other.rx, 0, 320, cfg, &scratch);

    const auto ws = run_receive_chain(s.tx, s.rx, 0, 320, cfg, &scratch);
    EXPECT_TRUE(ws.cleaned.empty());  // output lives in scratch.cleaned
    ASSERT_EQ(scratch.cleaned.size(), plain.cleaned.size());
    for (std::size_t i = 0; i < plain.cleaned.size(); ++i)
      ASSERT_EQ(scratch.cleaned[i], plain.cleaned[i]) << i;
    EXPECT_EQ(ws.analog_depth_db, plain.analog_depth_db);
    EXPECT_EQ(ws.total_depth_db, plain.total_depth_db);
    EXPECT_EQ(ws.residual_power, plain.residual_power);
    EXPECT_EQ(ws.adc_saturated, plain.adc_saturated);
    EXPECT_EQ(ws.cancellation_bypassed, plain.cancellation_bypassed);

    // A warm same-size re-run performs no further tracked allocations.
    const std::uint64_t allocated = stats.bytes_allocated;
    run_receive_chain(s.tx, s.rx, 0, 320, cfg, &scratch);
    EXPECT_EQ(stats.bytes_allocated, allocated);
    EXPECT_GT(stats.bytes_reused, 0u);
  }
}

TEST(ReceiveChainValidate, FirstViolationIsTypedAndNamed) {
  EXPECT_EQ(receive_chain_config{}.validate(), config_error::none);
  {
    receive_chain_config cfg;
    cfg.analog.n_taps = 0;
    EXPECT_EQ(cfg.validate(), config_error::zero_analog_taps);
  }
  {
    receive_chain_config cfg;
    cfg.analog.coefficient_bits = 0;
    EXPECT_EQ(cfg.validate(), config_error::zero_coefficient_bits);
  }
  {
    receive_chain_config cfg;
    cfg.digital.n_taps = 0;
    EXPECT_EQ(cfg.validate(), config_error::zero_digital_taps);
  }
  {
    receive_chain_config cfg;
    cfg.digital.ridge = -1e-9;
    EXPECT_EQ(cfg.validate(), config_error::bad_ridge);
  }
  {
    receive_chain_config cfg;
    cfg.adc.bits = 0;
    EXPECT_EQ(cfg.validate(), config_error::bad_adc_bits);
    cfg.adc.bits = 48;
    EXPECT_EQ(cfg.validate(), config_error::bad_adc_bits);
  }
  {
    receive_chain_config cfg;
    cfg.agc_headroom = 0.0;
    EXPECT_EQ(cfg.validate(), config_error::bad_agc_headroom);
  }
  {
    receive_chain_config cfg;
    cfg.track_residual_gain = true;
    cfg.gain_block = 0;
    EXPECT_EQ(cfg.validate(), config_error::zero_gain_block);
  }
  {
    // coefficient_bits > 64: the former (1ULL << (bits - 1)) quantization
    // step was undefined behaviour here; validate() now rejects it before
    // the analog stage can adapt.
    receive_chain_config cfg;
    cfg.analog.coefficient_bits = 65;
    EXPECT_EQ(cfg.validate(), config_error::bad_coefficient_bits);
    cfg.analog.coefficient_bits = 64;
    EXPECT_EQ(cfg.validate(), config_error::none);
    cfg.analog.coefficient_bits = 1000;
    EXPECT_EQ(cfg.validate(), config_error::bad_coefficient_bits);
  }
  EXPECT_STREQ(to_string(config_error::bad_adc_bits), "bad_adc_bits");
  EXPECT_STREQ(to_string(config_error::bad_coefficient_bits),
               "bad_coefficient_bits");
  EXPECT_STREQ(to_string(config_error::none), "none");
}

TEST(ReceiveChainValidate, EntryPointThrowsWithCallSiteAndReason) {
  const chain_scenario s = make_scenario(3);
  receive_chain_config cfg;
  cfg.adc.bits = 0;
  try {
    (void)run_receive_chain(s.tx, s.rx, 0, 320, cfg);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("run_receive_chain"), std::string::npos) << what;
    EXPECT_NE(what.find("bad_adc_bits"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace backfi::fd
